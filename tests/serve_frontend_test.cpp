// ServingFrontEnd tests (DESIGN.md §5.13): concurrent clients issuing
// single ops through the queue/batcher/pipeline stack must observe
// exactly the semantics of the serialization the replies report. Every
// reply carries its window sequence number, so the tests rebuild the
// total order (windows ascending; within a window the store's class
// order — upserts, deletes, gets, successors — with found flags against
// the window's write point) and replay the ACKED ops into the
// reference-model oracle. The chaos case runs kill/revive cycles
// underneath serving and requires the surviving acks to agree
// bit-identically with the oracle at the end — kNoQuorum/kShardDown
// refusals must land on exactly the affected client ops and must never
// become visible. Also pinned: pipelined and unpipelined modes produce
// semantically identical serialization, duplicate coalescing preserves
// the batch contract, admission control sheds at the door, and stop()
// completes (never abandons) every accepted op.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "reference_model.hpp"
#include "serve/serving_frontend.hpp"
#include "shard/sharded_store.hpp"
#include "test_util.hpp"

namespace pim {
namespace {

using serve::FrontEndOptions;
using serve::ServingFrontEnd;
using shard::ShardOptions;
using shard::ShardState;
using shard::ShardedPimStore;
using test::Ref;

ShardOptions serve_opts(u32 replication = 1, u32 write_quorum = 1) {
  ShardOptions o;
  o.shards = 4;
  o.spares = 2;
  o.modules_per_shard = 8;
  o.domain_lo = 0;
  o.domain_hi = 1'000'000'000;
  o.replication = replication;
  o.write_quorum = write_quorum;
  return o;
}

// One client-visible op with the reply it got — enough to rebuild the
// serialization afterwards (window seq + per-client submission order).
struct OpLog {
  enum Kind { kUpsert, kErase, kGet, kSucc } kind;
  Key key = 0;
  Value value = 0;  // upsert payload
  u64 seq = 0;      // window that served it
  Status status;
  bool flag = false;   // get/succ: found; erase: erased
  Value got = 0;       // get: value
  Key succ_key = 0;    // successor: answer
  u64 order = 0;       // per-client submission index (ticket order)
};

/// Replays the acked ops of a window-ordered log into the oracle and
/// checks every served read against it. `log` must hold each window's
/// ops in ticket order (per-client submission order suffices when each
/// client has at most one op per window, or when there is one client).
void replay_and_check(Ref& ref, const std::vector<OpLog>& log) {
  u64 i = 0;
  while (i < log.size()) {
    const u64 seq = log[i].seq;
    u64 j = i;
    while (j < log.size() && log[j].seq == seq) ++j;
    // Window [i, j): writes first, in class order, acked only.
    std::vector<std::pair<Key, Value>> ups;
    for (u64 k = i; k < j; ++k) {
      if (log[k].kind == OpLog::kUpsert && log[k].status.ok()) {
        ups.emplace_back(log[k].key, log[k].value);
      }
    }
    test::ref_upsert(ref, ups);  // duplicate keys: first occurrence wins
    // Deletes: erased flags reflect the state after the window's upserts
    // (the store runs the delete batch second).
    for (u64 k = i; k < j; ++k) {
      if (log[k].kind != OpLog::kErase || !log[k].status.ok()) continue;
      EXPECT_EQ(log[k].flag, ref.contains(log[k].key))
          << "erase flag diverged at window " << seq << " key " << log[k].key;
    }
    for (u64 k = i; k < j; ++k) {
      if (log[k].kind == OpLog::kErase && log[k].status.ok()) ref.erase(log[k].key);
    }
    // Reads observe the window's writes.
    for (u64 k = i; k < j; ++k) {
      const OpLog& op = log[k];
      if (!op.status.ok()) continue;
      if (op.kind == OpLog::kGet) {
        auto it = ref.find(op.key);
        EXPECT_EQ(op.flag, it != ref.end())
            << "get found diverged at window " << seq << " key " << op.key;
        if (it != ref.end() && op.flag) {
          EXPECT_EQ(op.got, it->second)
              << "get value diverged at window " << seq << " key " << op.key;
        }
      } else if (op.kind == OpLog::kSucc) {
        auto it = ref.lower_bound(op.key);
        EXPECT_EQ(op.flag, it != ref.end())
            << "successor found diverged at window " << seq;
        if (it != ref.end() && op.flag) {
          EXPECT_EQ(op.succ_key, it->first)
              << "successor key diverged at window " << seq;
        }
      }
    }
    i = j;
  }
}

/// Window-major, ticket-minor order (stable on per-client order).
void sort_log(std::vector<OpLog>& log) {
  std::stable_sort(log.begin(), log.end(), [](const OpLog& a, const OpLog& b) {
    return a.seq != b.seq ? a.seq < b.seq : a.order < b.order;
  });
}

// ---------------------------------------------------------------------
// Single-threaded semantics: a deterministic burst submitted without
// waiting, so windows carry many ops from one client — coalescing and
// class ordering are exercised hard. Runs identically in both modes.
// ---------------------------------------------------------------------
void run_burst_mode(bool pipeline) {
  ShardedPimStore store(serve_opts());
  rnd::Xoshiro256ss rng(0x5EB5E001u);
  const auto pairs = test::make_sorted_pairs(800, rng);
  store.build(pairs);
  Ref ref(pairs.begin(), pairs.end());

  FrontEndOptions fo;
  fo.max_batch = 64;
  fo.max_delay_rounds = 16;
  fo.pipeline = pipeline;
  ServingFrontEnd fe(store, fo);

  struct Pending {
    OpLog base;
    std::future<serve::GetReply> get;
    std::future<serve::UpsertReply> ups;
    std::future<serve::EraseReply> ers;
    std::future<serve::SuccessorReply> suc;
  };
  std::vector<Pending> inflight;
  u64 order = 0;
  for (u32 burst = 0; burst < 12; ++burst) {
    for (u32 i = 0; i < 96; ++i) {
      Pending p;
      p.base.order = order++;
      const u64 dice = rng.below(10);
      const Key hot = pairs[rng.below(pairs.size())].first;
      if (dice < 3) {
        p.base.kind = OpLog::kUpsert;
        // A quarter of upserts reuse a hot key: duplicate writes in one
        // window must coalesce first-occurrence-wins.
        p.base.key = (dice == 0) ? hot : rng.range(0, 1'000'000'000);
        p.base.value = rng();
        p.ups = fe.submit_upsert(p.base.key, p.base.value);
      } else if (dice < 5) {
        p.base.kind = OpLog::kErase;
        p.base.key = (dice == 3) ? hot : rng.range(0, 1'000'000'000);
        p.ers = fe.submit_erase(p.base.key);
      } else if (dice < 8) {
        p.base.kind = OpLog::kGet;
        p.base.key = hot;  // duplicate reads coalesce
        p.get = fe.submit_get(p.base.key);
      } else {
        p.base.kind = OpLog::kSucc;
        p.base.key = rng.range(0, 1'000'000'000);
        p.suc = fe.submit_successor(p.base.key);
      }
      inflight.push_back(std::move(p));
    }
    fe.drain();
  }

  std::vector<OpLog> log;
  log.reserve(inflight.size());
  for (Pending& p : inflight) {
    OpLog e = p.base;
    switch (e.kind) {
      case OpLog::kUpsert: {
        auto r = p.ups.get();
        e.seq = r.batch_seq;
        e.status = r.status;
        break;
      }
      case OpLog::kErase: {
        auto r = p.ers.get();
        e.seq = r.batch_seq;
        e.status = r.status;
        e.flag = r.erased;
        break;
      }
      case OpLog::kGet: {
        auto r = p.get.get();
        e.seq = r.batch_seq;
        e.status = r.status;
        e.flag = r.found;
        e.got = r.value;
        break;
      }
      case OpLog::kSucc: {
        auto r = p.suc.get();
        e.seq = r.batch_seq;
        e.status = r.status;
        e.flag = r.found;
        e.succ_key = r.key;
        break;
      }
    }
    EXPECT_TRUE(e.status.ok()) << e.status.to_string();
    log.push_back(std::move(e));
  }
  sort_log(log);
  replay_and_check(ref, log);

  const auto st = fe.stats();
  EXPECT_EQ(st.accepted, log.size());
  EXPECT_EQ(st.completed, log.size());
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_GT(st.windows, 0u);
  EXPECT_GT(st.coalesced_reads, 0u) << "duplicate gets never coalesced";
  fe.stop();

  // The store agrees with the oracle bit-for-bit.
  const auto all = store.range_collect(0, 1'000'000'000);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

TEST(ServeFrontEnd, BurstSemanticsPipelined) { run_burst_mode(true); }
TEST(ServeFrontEnd, BurstSemanticsUnpipelined) { run_burst_mode(false); }

// ---------------------------------------------------------------------
// K blocking client threads under kill/revive chaos. Each client owns a
// disjoint write key space and blocks on every reply, so it contributes
// at most one op per window and the (window, per-client order) sort
// reconstructs the exact serialization. R = 2 with write_quorum = 2:
// while a member is dead, writes to its group refuse with kNoQuorum —
// those land on exactly the affected clients' ops and must stay
// invisible; reads retarget to the surviving member and keep serving.
// ---------------------------------------------------------------------
TEST(ServeFrontEnd, ConcurrentClientsUnderChaosAgreeWithOracle) {
  ShardedPimStore store(serve_opts(/*replication=*/2, /*write_quorum=*/2));
  rnd::Xoshiro256ss rng(0x5EB5E002u);
  const auto pairs = test::make_sorted_pairs(600, rng);
  store.build(pairs);
  Ref ref(pairs.begin(), pairs.end());

  FrontEndOptions fo;
  fo.max_batch = 32;
  fo.max_delay_rounds = 8;
  fo.pipeline = true;
  ServingFrontEnd fe(store, fo);

  constexpr u32 kClients = 4;
  constexpr u32 kOpsPerClient = 160;
  constexpr Key kStride = 1'000'000'000 / kClients;
  std::vector<std::vector<OpLog>> logs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (u32 c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Writes stay inside the client's own stripe — no two clients ever
      // write the same key, so every window's writes have distinct keys.
      rnd::Xoshiro256ss crng(0xC11E47u + c);
      const Key lo = static_cast<Key>(c) * kStride;
      std::vector<OpLog>& log = logs[c];
      for (u32 i = 0; i < kOpsPerClient; ++i) {
        OpLog e;
        e.order = i;
        const u64 dice = crng.below(10);
        if (dice < 4) {
          e.kind = OpLog::kUpsert;
          e.key = lo + crng.range(0, kStride - 1);
          e.value = crng();
          auto r = fe.upsert(e.key, e.value);
          e.seq = r.batch_seq;
          e.status = r.status;
        } else if (dice < 6) {
          e.kind = OpLog::kErase;
          e.key = lo + crng.range(0, kStride - 1);
          auto r = fe.erase(e.key);
          e.seq = r.batch_seq;
          e.status = r.status;
          e.flag = r.erased;
        } else if (dice < 9) {
          e.kind = OpLog::kGet;
          e.key = crng.range(0, 1'000'000'000);  // reads roam everywhere
          auto r = fe.get(e.key);
          e.seq = r.batch_seq;
          e.status = r.status;
          e.flag = r.found;
          e.got = r.value;
        } else {
          e.kind = OpLog::kSucc;
          e.key = crng.range(0, 1'000'000'000);
          auto r = fe.successor(e.key);
          e.seq = r.batch_seq;
          e.status = r.status;
          e.flag = r.found;
          e.succ_key = r.key;
        }
        log.push_back(std::move(e));
      }
    });
  }

  // Kill/revive cycles underneath serving, serialized against the
  // executor through the front end's store mutex (the deployment's
  // "policy thread" seat).
  rnd::Xoshiro256ss xrng(0xC4405u);
  for (u32 cycle = 0; cycle < 5; ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    u32 victim;
    {
      std::lock_guard lock(fe.store_mutex());
      victim = store.route(static_cast<Key>(xrng.below(1'000'000'000)));
      store.kill_shard(victim);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    {
      std::lock_guard lock(fe.store_mutex());
      store.revive_shard(victim);
    }
  }

  for (auto& t : clients) t.join();
  fe.drain();
  fe.stop();

  std::vector<OpLog> log;
  for (auto& l : logs) {
    for (auto& e : l) log.push_back(std::move(e));
  }
  sort_log(log);
  // Status taxonomy: every reply is either served (kOk) or refused with
  // a fault-tier code — never an invented one, never silently dropped.
  u64 refused = 0;
  for (const OpLog& e : log) {
    if (e.status.ok()) continue;
    ++refused;
    const StatusCode c = e.status.code();
    EXPECT_TRUE(c == StatusCode::kNoQuorum || c == StatusCode::kShardDown ||
                c == StatusCode::kFencedEpoch || c == StatusCode::kUnavailable)
        << "unexpected refusal: " << e.status.to_string();
  }
  EXPECT_EQ(log.size(), static_cast<u64>(kClients) * kOpsPerClient);

  replay_and_check(ref, log);

  // Final contents: bit-identical with the oracle that replayed acked
  // ops only — no acked write lost, no refused write visible.
  const auto all = store.range_collect(0, 1'000'000'000);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Admission control + lifecycle edges.
// ---------------------------------------------------------------------
TEST(ServeFrontEnd, AdmissionControlShedsAtTheDoor) {
  ShardedPimStore store(serve_opts());
  rnd::Xoshiro256ss rng(0x5EB5E003u);
  const auto pairs = test::make_sorted_pairs(200, rng);
  store.build(pairs);

  FrontEndOptions fo;
  fo.max_batch = 8;
  fo.max_queue_ops = 4;
  ServingFrontEnd fe(store, fo);

  std::vector<std::future<serve::GetReply>> futs;
  for (u32 i = 0; i < 256; ++i) futs.push_back(fe.submit_get(pairs[i % pairs.size()].first));
  u64 ok = 0, shed = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted) << r.status.to_string();
      EXPECT_EQ(r.batch_seq, 0u) << "a shed op must never reach a window";
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u) << "max_queue_ops = 4 never shed under a 256-op flood";
  const auto st = fe.stats();
  EXPECT_EQ(st.rejected, shed);
  EXPECT_EQ(st.completed, ok);
}

TEST(ServeFrontEnd, StopCompletesEverythingThenRefuses) {
  ShardedPimStore store(serve_opts());
  rnd::Xoshiro256ss rng(0x5EB5E004u);
  const auto pairs = test::make_sorted_pairs(200, rng);
  store.build(pairs);

  ServingFrontEnd fe(store, FrontEndOptions{});
  std::vector<std::future<serve::UpsertReply>> futs;
  for (u32 i = 0; i < 64; ++i) futs.push_back(fe.submit_upsert(static_cast<Key>(i) * 7 + 1, i));
  fe.stop();
  for (auto& f : futs) {
    const auto r = f.get();  // stop() never abandons an accepted op
    EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  }
  const auto r = fe.get(pairs[0].first);
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  // Idempotent.
  fe.stop();
}

}  // namespace
}  // namespace pim
