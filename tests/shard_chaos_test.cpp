// Chaos + consistency harness tests (DESIGN.md §5.12). The sweep runs
// 50+ distinct seeded schedules across R ∈ {1, 2, 3} — kills, revives,
// stalls, flaky links, migrations and fence races interleaved with a
// random workload — and requires zero consistency violations: no acked
// write lost, no refused write visible past its audit, per-key
// monotonic (in fact exact) reads, and final bit-equality with a
// single-Machine oracle replaying only the acked sub-batches. Every
// failure reprints its seed; PIM_CHAOS_SEED=<seed> replays exactly that
// schedule via the SeedReplay case. The direct tests pin the fencing
// semantics the harness relies on: zombie dispatches are refused, and
// movement-vs-configuration races resolve by epoch, never by timing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "reference_model.hpp"
#include "shard/chaos.hpp"
#include "shard/policy.hpp"
#include "shard/sharded_store.hpp"
#include "test_util.hpp"

namespace pim {
namespace {

using shard::PolicyOptions;
using shard::ShardOptions;
using shard::ShardPolicy;
using shard::ShardState;
using shard::ShardedPimStore;
using shard::chaos::ChaosOptions;
using shard::chaos::ChaosReport;
using shard::chaos::run_chaos;

/// Where a failing run's history goes (the CI jobs upload this dir).
std::string artifact_path(u64 seed) {
  const char* dir = std::getenv("PIM_CHAOS_ARTIFACT_DIR");
  return std::string(dir != nullptr ? dir : ".") + "/chaos_seed_" +
         std::to_string(seed) + ".jsonl";
}

void expect_clean(const ChaosReport& rep) {
  EXPECT_TRUE(rep.ok) << rep.summary();
  if (!rep.ok) rep.dump_jsonl(artifact_path(rep.seed));
}

void run_sweep(u32 replication, u32 write_quorum, bool quorum_reads,
               bool gray, u64 seed_base, u32 seeds) {
  for (u32 i = 0; i < seeds; ++i) {
    ChaosOptions o;
    o.seed = seed_base + i;
    o.replication = replication;
    o.write_quorum = write_quorum;
    o.quorum_reads = quorum_reads;
    o.gray_detection = gray;
    expect_clean(run_chaos(o));
  }
}

// ---------------------------------------------------------------------
// The sweep: >= 50 distinct seeds total across R in {1, 2, 3}, with
// quorum writes, quorum reads and the gray detector mixed in.
// ---------------------------------------------------------------------

TEST(ShardChaos, SweepR1) {
  run_sweep(/*replication=*/1, /*write_quorum=*/1, /*quorum_reads=*/false,
            /*gray=*/false, /*seed_base=*/0x11000, /*seeds=*/14);
}

TEST(ShardChaos, SweepR2) {
  run_sweep(2, 1, false, false, 0x22000, 10);
  run_sweep(2, 2, false, false, 0x22100, 5);
  run_sweep(2, 1, false, /*gray=*/true, 0x22200, 4);
}

TEST(ShardChaos, SweepR3) {
  run_sweep(3, 1, false, false, 0x33000, 8);
  run_sweep(3, 2, /*quorum_reads=*/true, false, 0x33100, 6);
  run_sweep(3, 2, true, /*gray=*/true, 0x33200, 4);
}

// One-command replay: PIM_CHAOS_SEED=<seed> reruns exactly that
// schedule (R = 2 by default; PIM_CHAOS_R overrides).
TEST(ShardChaos, SeedReplay) {
  ChaosOptions o;
  const char* seed = std::getenv("PIM_CHAOS_SEED");
  o.seed = seed != nullptr ? std::strtoull(seed, nullptr, 0) : 0x22000;
  const char* r = std::getenv("PIM_CHAOS_R");
  o.replication = r != nullptr ? static_cast<u32>(std::atoi(r)) : 2;
  const ChaosReport rep = run_chaos(o);
  EXPECT_TRUE(rep.ok) << rep.summary();
  if (!rep.ok) {
    rep.dump_jsonl(artifact_path(rep.seed));
    ADD_FAILURE() << "history dumped to " << artifact_path(rep.seed);
  }
}

// ---------------------------------------------------------------------
// The checker must CATCH a stale-epoch ack: the injection hook ages one
// dispatch (the zombie), records the fenced-refused write as acked —
// exactly what a zombie member acking under an old configuration would
// produce — and the final-state check must flag the lost write, with
// the seed in the report for replay.
// ---------------------------------------------------------------------

TEST(ShardChaos, StaleAckInjectionIsCaughtByChecker) {
  ChaosOptions o;
  o.seed = 0xBADACCu;
  o.replication = 2;
  o.inject_stale_ack = true;
  const ChaosReport rep = shard::chaos::run_chaos(o);
  ASSERT_FALSE(rep.ok) << "an injected stale-epoch ack went undetected";
  bool lost = false;
  for (const std::string& v : rep.violations) {
    if (v.find("acked write lost") != std::string::npos) lost = true;
  }
  EXPECT_TRUE(lost) << rep.summary();
  EXPECT_NE(rep.summary().find(std::to_string(rep.seed)), std::string::npos)
      << "a failing report must carry its seed for replay";
  EXPECT_NE(rep.summary().find("PIM_CHAOS_SEED"), std::string::npos);
  // The artifact dump is what CI uploads on failure.
  const std::string path = artifact_path(rep.seed);
  EXPECT_TRUE(rep.dump_jsonl(path));
}

// ---------------------------------------------------------------------
// Zombie semantics, pinned directly on the store: a dispatch captured
// under an old epoch (the member was killed and revived mid-wave) must
// be refused — never acked, never journaled, never served.
// ---------------------------------------------------------------------

ShardOptions chaos_opts(u32 replication, u32 shards = 2, u32 spares = 2) {
  ShardOptions o;
  o.shards = shards;
  o.spares = spares;
  o.replication = replication;
  o.modules_per_shard = 8;
  o.domain_lo = 0;
  o.domain_hi = 1'000'000'000;
  o.migration_chunk = 64;
  return o;
}

TEST(ShardChaos, ZombieMemberIsFencedOutOfAcksAndReads) {
  ShardedPimStore store(chaos_opts(2));
  rnd::Xoshiro256ss rng(0x50B1Eu);
  const auto pairs = test::make_sorted_pairs(300, rng);
  store.build(pairs);

  const auto [g0lo, g0hi] = store.group_range(0);
  const auto [g1lo, g1hi] = store.group_range(1);
  const Key k0 = g0lo + 7;
  const Key k1 = g1lo + 7;
  const u64 journal0 = store.group_journal_records(0);

  // A mixed batch whose group-0 wave was dispatched under a stale epoch:
  // exactly the group-0 positions come back kFencedEpoch (unacked,
  // unjournaled); the group-1 positions ack normally.
  store.test_age_dispatch(0);
  const auto st = store.batch_upsert(
      std::vector<std::pair<Key, Value>>{{k0, 111}, {k1, 222}});
  EXPECT_EQ(st[0].code(), StatusCode::kFencedEpoch) << st[0].to_string();
  EXPECT_TRUE(st[1].ok()) << st[1].to_string();
  EXPECT_EQ(store.group_journal_records(0), journal0)
      << "a fenced write must never reach the journal";
  EXPECT_GE(store.fence_refusals(), 1u);

  // The zombie window also never serves reads: both get attempts (the
  // initial dispatch and its one same-call retry) are aged, so the read
  // is refused rather than answered under the old configuration.
  store.test_age_dispatch(0, 2);
  auto grs = store.batch_get(std::vector<Key>{k0});
  EXPECT_EQ(grs[0].status.code(), StatusCode::kFencedEpoch)
      << grs[0].status.to_string();

  // A single aged dispatch is healed by the in-call retry: the second
  // attempt observes the current epoch and serves.
  store.test_age_dispatch(0);
  grs = store.batch_get(std::vector<Key>{k0});
  ASSERT_TRUE(grs[0].status.ok()) << grs[0].status.to_string();
  EXPECT_FALSE(grs[0].found) << "the fenced upsert must not be visible";

  // Re-admission at the current epoch: the same write now acks, commits
  // and journals.
  const auto st2 = store.batch_upsert(
      std::vector<std::pair<Key, Value>>{{k0, 111}});
  ASSERT_TRUE(st2[0].ok()) << st2[0].to_string();
  EXPECT_GT(store.group_journal_records(0), journal0);
  grs = store.batch_get(std::vector<Key>{k0});
  ASSERT_TRUE(grs[0].status.ok());
  EXPECT_TRUE(grs[0].found);
  EXPECT_EQ(grs[0].value, 111u);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Movement-vs-configuration races resolve by epoch, never by timing: a
// configuration change after a movement started invalidates the staged
// copy, and the next step refuses with kFencedEpoch and aborts cleanly
// (target recycled, group intact).
// ---------------------------------------------------------------------

TEST(ShardChaos, RepairInstallRacingConfigChangeResolvesByEpoch) {
  ShardedPimStore store(chaos_opts(2));
  rnd::Xoshiro256ss rng(0x4ACEu);
  const auto pairs = test::make_sorted_pairs(400, rng);
  store.build(pairs);

  // Under-replicate group 0 and start rebuilding onto a spare.
  const u32 dead = store.group_members(0)[0];
  const u32 survivor = store.group_members(0)[1];
  store.kill_shard(dead);
  ASSERT_TRUE(store.start_repair(0).ok());
  ASSERT_TRUE(store.repair_active());
  ASSERT_TRUE(store.repair_step().ok());

  // A configuration change lands mid-rebuild (here: a gray demotion of
  // the copy source — any epoch bump works). The staged copy is now of
  // unknown provenance relative to the new configuration.
  ASSERT_TRUE(store.set_read_deprioritized(survivor, true).ok());

  const Status st = store.repair_step();
  EXPECT_EQ(st.code(), StatusCode::kFencedEpoch) << st.to_string();
  EXPECT_FALSE(store.repair_active()) << "a fenced repair must abort";

  // Nothing leaked: the group still serves, and a fresh repair (started
  // under the new epoch) completes and reinstalls the member.
  ASSERT_TRUE(store.set_read_deprioritized(survivor, false).ok());
  ASSERT_TRUE(store.start_repair(0).ok());
  u32 steps = 0;
  while (store.repair_active() && steps++ < 256) {
    ASSERT_TRUE(store.repair_step().ok());
  }
  ASSERT_FALSE(store.repair_active());
  EXPECT_EQ(store.group_live_members(0), 2u);
  store.check_invariants();
}

TEST(ShardChaos, MigrationCutoverRacingMemberBounceResolvesByEpoch) {
  ShardedPimStore store(chaos_opts(2));
  rnd::Xoshiro256ss rng(0x3A6u);
  const auto pairs = test::make_sorted_pairs(400, rng);
  store.build(pairs);
  test::Ref ref(pairs.begin(), pairs.end());

  // Split group 0's range out of member A; mid-copy, bounce member B
  // (kill + instant revive — a member that left and rejoined). B is
  // neither the migration's source nor target, so only the epoch says
  // the configuration moved under the migration.
  const u32 src = store.group_members(0)[0];
  const u32 other = store.group_members(0)[1];
  // Group 0 owns [kMinKey, hi); split the populated half of its range.
  const auto [lo, hi] = store.group_range(0);
  const Key clo = std::max<Key>(lo, 0);
  ASSERT_TRUE(store.start_migration(src, clo + (hi - clo) / 2).ok());
  ASSERT_TRUE(store.migration_step().ok());
  ASSERT_TRUE(store.migration_active());

  store.kill_shard(other);
  store.revive_shard(other);

  const Status st = store.migration_step();
  EXPECT_EQ(st.code(), StatusCode::kFencedEpoch) << st.to_string();
  EXPECT_FALSE(store.migration_active()) << "a fenced migration must abort";

  // No ownership moved and nothing was lost: full contents still match.
  const auto all = store.range_collect(0, 999'999'999);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> want(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, want);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Gray-failure detection: a slow-but-alive member (stalled rounds, zero
// failures — invisible to the fail-stop breaker) is read-deprioritized
// after the streak threshold, and readmitted with hysteresis once its
// cost returns to the group median.
// ---------------------------------------------------------------------

TEST(ShardChaos, GrayDetectorDemotesSlowMemberThenReadmits) {
  ShardedPimStore store(chaos_opts(2, /*shards=*/2, /*spares=*/0));
  rnd::Xoshiro256ss rng(0x6EA1u);
  const auto pairs = test::make_sorted_pairs(400, rng);
  store.build(pairs);

  PolicyOptions po;
  po.interval_ms = 0;
  po.anti_entropy_groups = 1;
  po.gray.enabled = true;
  ShardPolicy policy(store, po);

  auto wave = [&] {
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 16; ++i) {
      ups.emplace_back(static_cast<Key>(rng.range(0, 1'000'000'000)), rng());
    }
    for (const Status& s : store.batch_upsert(ups)) {
      ASSERT_TRUE(s.ok()) << s.to_string();
    }
    policy.step();
  };

  // Baseline ticks so every member has an EWMA before the stall starts.
  for (u32 i = 0; i < 4; ++i) wave();
  ASSERT_EQ(policy.stats().gray_demotions, 0u)
      << "healthy members must never be demoted";

  const u32 victim = store.group_members(0)[0];
  ASSERT_TRUE(store.slow_shard(victim, 10.0).ok());
  for (u32 i = 0; i < 12 && !store.read_deprioritized(victim); ++i) wave();
  EXPECT_TRUE(store.read_deprioritized(victim))
      << "a 10x-stalled member was never demoted";
  EXPECT_GE(policy.stats().gray_demotions, 1u);
  // Demotion is a read-path decision only: the member still acks writes.
  EXPECT_EQ(store.shard_state(victim), ShardState::kLive);

  // Recovery: clear the stall and the detector readmits — but only
  // after the healthy streak, so one good tick is not enough (hysteresis).
  ASSERT_TRUE(store.clear_shard_chaos(victim).ok());
  wave();
  EXPECT_TRUE(store.read_deprioritized(victim))
      << "readmission must take readmit_after healthy ticks, not one";
  for (u32 i = 0; i < 16 && store.read_deprioritized(victim); ++i) wave();
  EXPECT_FALSE(store.read_deprioritized(victim))
      << "a recovered member was never readmitted";
  EXPECT_GE(policy.stats().gray_readmissions, 1u);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Read-your-quorum (opt-in): with write_quorum = 2, a read consults
// enough members to intersect every write quorum, so a write refused
// for lack of quorum — transiently applied on a survivor — can never be
// served as if it were acked.
// ---------------------------------------------------------------------

TEST(ShardChaos, QuorumReadsHideRefusedWrites) {
  auto opts = chaos_opts(2, /*shards=*/2, /*spares=*/0);
  opts.write_quorum = 2;
  opts.quorum_reads = true;
  ShardedPimStore store(opts);
  rnd::Xoshiro256ss rng(0x9042u);
  const auto pairs = test::make_sorted_pairs(400, rng);
  store.build(pairs);
  test::Ref ref(pairs.begin(), pairs.end());

  const auto [g0lo, g0hi] = store.group_range(0);
  Key fresh = g0lo + 424242;
  while (ref.contains(fresh)) ++fresh;

  // One member down: writes can no longer quorum, but the survivor
  // transiently applies them before the refusal rolls back.
  store.kill_shard(store.group_members(0)[0]);
  const auto st =
      store.batch_upsert(std::vector<std::pair<Key, Value>>{{fresh, 999}});
  ASSERT_EQ(st[0].code(), StatusCode::kNoQuorum) << st[0].to_string();

  // A quorum read must NOT see the refused write: with only one live
  // member it cannot reach read-quorum agreement and resolves from the
  // journal replay — the acked state.
  const auto grs = store.batch_get(std::vector<Key>{fresh});
  ASSERT_TRUE(grs[0].status.ok()) << grs[0].status.to_string();
  EXPECT_FALSE(grs[0].found) << "a refused write leaked through quorum reads";
  EXPECT_GE(store.quorum_read_resolves(), 1u);

  // Restored strength: acked writes are served by quorum agreement.
  store.revive_shard(store.group_members(0)[0]);
  const auto st2 =
      store.batch_upsert(std::vector<std::pair<Key, Value>>{{fresh, 1000}});
  ASSERT_TRUE(st2[0].ok());
  const auto grs2 = store.batch_get(std::vector<Key>{fresh});
  ASSERT_TRUE(grs2[0].status.ok());
  EXPECT_TRUE(grs2[0].found);
  EXPECT_EQ(grs2[0].value, 1000u);
  store.check_invariants();
}

}  // namespace
}  // namespace pim
