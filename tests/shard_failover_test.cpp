// Sharded-store tier tests (DESIGN.md §5.10): routing exactness against
// the batch reference model, parallel-vs-serial dispatch equivalence,
// and the chaos acceptance contract — killing one shard mid-workload
// fails exactly that shard's keys (never the batch), and failover to a
// spare restores full availability with zero lost acknowledged writes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "reference_model.hpp"
#include "shard/sharded_store.hpp"
#include "test_util.hpp"

namespace pim {
namespace {

using shard::ShardOptions;
using shard::ShardState;
using shard::ShardedPimStore;
using test::Ref;

ShardOptions small_opts(bool parallel = true) {
  ShardOptions o;
  o.shards = 4;
  o.spares = 1;
  o.modules_per_shard = 8;
  o.domain_lo = 0;
  o.domain_hi = 1'000'000'000;
  o.parallel_dispatch = parallel;
  return o;
}

/// Applies one upsert batch to the tracker exactly as acknowledged:
/// positions whose status is kOk, first occurrence of a key wins.
void track_acked_upserts(Ref& acked, std::span<const std::pair<Key, Value>> ops,
                         const std::vector<Status>& st) {
  std::set<Key> seen;
  for (u64 i = 0; i < ops.size(); ++i) {
    if (!seen.insert(ops[i].first).second) continue;
    if (st[i].ok()) acked[ops[i].first] = ops[i].second;
  }
}

void track_acked_deletes(Ref& acked, std::span<const Key> keys,
                         const std::vector<ShardedPimStore::FlagResult>& st) {
  for (u64 i = 0; i < keys.size(); ++i) {
    if (st[i].status.ok()) acked.erase(keys[i]);
  }
}

TEST(ShardedStore, RouterAndBatchOpsMatchReference) {
  ShardedPimStore store(small_opts());
  rnd::Xoshiro256ss rng(0x5AA4D01u);
  const auto pairs = test::make_sorted_pairs(1500, rng);
  store.build(pairs);
  Ref ref(pairs.begin(), pairs.end());
  ASSERT_EQ(store.size(), ref.size());

  for (u32 round = 0; round < 6; ++round) {
    // Upserts: fresh keys plus rewrites, with duplicates in the batch.
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 48; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    ups.push_back(ups.front());  // duplicate: first occurrence must win
    const auto ust = store.batch_upsert(ups);
    for (const Status& s : ust) EXPECT_TRUE(s.ok()) << s.to_string();
    test::ref_upsert(ref, ups);

    // Updates against a mix of present and missing keys.
    std::vector<std::pair<Key, Value>> upd;
    for (u32 i = 0; i < 16; ++i) upd.emplace_back(test::existing_key(ref, rng), rng());
    upd.emplace_back(rng.range(0, 1'000'000'000), rng());
    const auto updres = store.batch_update(upd);
    const auto reffound = test::ref_update(ref, upd);
    for (u64 i = 0; i < upd.size(); ++i) {
      ASSERT_TRUE(updres[i].status.ok());
      EXPECT_EQ(updres[i].found, reffound[i] != 0) << "update pos " << i;
    }

    // Deletes.
    std::vector<Key> dels;
    for (u32 i = 0; i < 12; ++i) dels.push_back(test::existing_key(ref, rng));
    dels.push_back(rng.range(0, 1'000'000'000));
    const auto delres = store.batch_delete(dels);
    const auto refdel = test::ref_delete(ref, dels);
    for (u64 i = 0; i < dels.size(); ++i) {
      ASSERT_TRUE(delres[i].status.ok());
      EXPECT_EQ(delres[i].found, refdel[i] != 0) << "delete pos " << i;
    }

    // Gets.
    std::vector<Key> gets;
    for (u32 i = 0; i < 24; ++i) gets.push_back(test::existing_key(ref, rng));
    for (u32 i = 0; i < 8; ++i) gets.push_back(rng.range(0, 1'000'000'000));
    const auto gres = store.batch_get(gets);
    for (u64 i = 0; i < gets.size(); ++i) {
      ASSERT_TRUE(gres[i].status.ok());
      auto it = ref.find(gets[i]);
      EXPECT_EQ(gres[i].found, it != ref.end());
      if (it != ref.end()) {
        EXPECT_EQ(gres[i].value, it->second);
      }
    }

    // Ordered queries stitch across shard boundaries.
    std::vector<Key> near;
    for (u32 i = 0; i < 16; ++i) near.push_back(rng.range(0, 1'000'000'000));
    const auto succ = store.batch_successor(near);
    const auto pred = store.batch_predecessor(near);
    for (u64 i = 0; i < near.size(); ++i) {
      ASSERT_TRUE(succ[i].status.ok());
      auto it = ref.lower_bound(near[i]);
      EXPECT_EQ(succ[i].found, it != ref.end());
      if (it != ref.end()) {
        EXPECT_EQ(succ[i].key, it->first);
      }

      ASSERT_TRUE(pred[i].status.ok());
      auto pit = ref.upper_bound(near[i]);
      EXPECT_EQ(pred[i].found, pit != ref.begin());
      if (pit != ref.begin()) {
        EXPECT_EQ(pred[i].key, std::prev(pit)->first);
      }
    }

    // Range aggregation across all four shards.
    const Key lo = rng.range(0, 500'000'000);
    const Key hi = lo + static_cast<Key>(rng.range(0, 500'000'000));
    const auto agg = store.range_aggregate(lo, hi);
    ASSERT_TRUE(agg.status.ok());
    const auto [rc, rs] = test::ref_range(ref, lo, hi);
    EXPECT_EQ(agg.agg.count, rc);
    EXPECT_EQ(agg.agg.sum, rs);
  }

  // Full-space collect equals the reference map exactly.
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, expect);
  EXPECT_EQ(store.size(), ref.size());
  store.check_invariants();
}

TEST(ShardedStore, ParallelAndSerialDispatchAgree) {
  ShardedPimStore par_store(small_opts(/*parallel=*/true));
  ShardedPimStore ser_store(small_opts(/*parallel=*/false));
  rnd::Xoshiro256ss rng(0xD15BA7C4u);
  const auto pairs = test::make_sorted_pairs(800, rng);
  par_store.build(pairs);
  ser_store.build(pairs);

  for (u32 round = 0; round < 4; ++round) {
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 64; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    const auto a = par_store.batch_upsert(ups);
    const auto b = ser_store.batch_upsert(ups);
    for (u64 i = 0; i < ups.size(); ++i) EXPECT_EQ(a[i].code(), b[i].code());

    std::vector<Key> gets;
    for (u32 i = 0; i < 64; ++i) gets.push_back(rng.range(0, 1'000'000'000));
    const auto ga = par_store.batch_get(gets);
    const auto gb = ser_store.batch_get(gets);
    for (u64 i = 0; i < gets.size(); ++i) {
      EXPECT_EQ(ga[i].status.code(), gb[i].status.code());
      EXPECT_EQ(ga[i].found, gb[i].found);
      EXPECT_EQ(ga[i].value, gb[i].value);
    }

    const auto sa = par_store.batch_successor(gets);
    const auto sb = ser_store.batch_successor(gets);
    for (u64 i = 0; i < gets.size(); ++i) {
      EXPECT_EQ(sa[i].found, sb[i].found);
      EXPECT_EQ(sa[i].key, sb[i].key);
    }
  }
  EXPECT_EQ(par_store.size(), ser_store.size());
}

TEST(ShardedStore, KillFailsExactlyItsKeysAndFailoverLosesNoAckedWrite) {
  ShardedPimStore store(small_opts());
  rnd::Xoshiro256ss rng(0xFA110Fu);
  const auto pairs = test::make_sorted_pairs(1200, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  // A few acknowledged write batches before the failure.
  for (u32 round = 0; round < 3; ++round) {
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 64; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    track_acked_upserts(acked, ups, store.batch_upsert(ups));
    std::vector<Key> dels;
    for (u32 i = 0; i < 8; ++i) dels.push_back(test::existing_key(acked, rng));
    track_acked_deletes(acked, dels, store.batch_delete(dels));
  }

  const u32 victim = 1;
  store.kill_shard(victim);
  EXPECT_EQ(store.shard_state(victim), ShardState::kDead);
  EXPECT_EQ(store.live_shards(), 3u);

  // A batch spanning all shards: the victim's keys answer kShardDown,
  // every other key still succeeds — the batch is never wedged.
  std::vector<Key> gets;
  for (u32 i = 0; i < 128; ++i) gets.push_back(rng.range(0, 1'000'000'000));
  const auto gres = store.batch_get(gets);
  u32 down = 0, ok = 0;
  for (u64 i = 0; i < gets.size(); ++i) {
    if (store.route(gets[i]) == victim) {
      EXPECT_EQ(gres[i].status.code(), StatusCode::kShardDown) << "pos " << i;
      ++down;
    } else {
      EXPECT_TRUE(gres[i].status.ok()) << gres[i].status.to_string();
      ++ok;
    }
  }
  EXPECT_GT(down, 0u);
  EXPECT_GT(ok, 0u);

  // Writes into the dead range are rejected (not silently dropped): the
  // rejection means they are NOT acknowledged, so losing them is not a
  // durability violation.
  std::vector<std::pair<Key, Value>> ups;
  for (u32 i = 0; i < 32; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
  track_acked_upserts(acked, ups, store.batch_upsert(ups));

  // Failover replays the victim's checkpoint + journal into the spare.
  const auto st = store.failover(victim);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(store.live_shards(), 4u);
  for (const Key k : gets) EXPECT_NE(store.route(k), victim);

  // Zero lost acknowledged writes: the store now equals the acked
  // tracker exactly — every acked upsert present with its value, every
  // acked delete gone, nothing extra.
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

TEST(ShardedStore, ModuleCrashStormIsContainedThenHealthFailStopsTheShard) {
  auto opts = small_opts();
  opts.shard_breaker_strikes = 1;
  ShardedPimStore store(opts);
  rnd::Xoshiro256ss rng(0xC4A5Du);
  const auto pairs = test::make_sorted_pairs(1000, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  // Crash every module of shard 2 a round into its next batch.
  const u32 victim = 2;
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 0xDEAD5EEDull;
  const u64 at = store.shard_machine(victim)->rounds() + 2;
  for (u32 m = 0; m < opts.modules_per_shard; ++m) {
    plan.crashes.push_back(sim::CrashEvent{m, at});
  }
  store.set_shard_fault_plan(victim, plan);

  // The storm batch: only the victim's keys may fail, and they fail with
  // per-key statuses (kUnavailable / kShardDown family), not an exception.
  std::vector<Key> gets;
  for (u32 i = 0; i < 96; ++i) gets.push_back(rng.range(0, 1'000'000'000));
  const auto gres = store.batch_get(gets);
  for (u64 i = 0; i < gets.size(); ++i) {
    if (store.route(gets[i]) != victim) {
      EXPECT_TRUE(gres[i].status.ok()) << gres[i].status.to_string();
      auto it = acked.find(gets[i]);
      EXPECT_EQ(gres[i].found, it != acked.end());
    }
  }

  // Run batches until the health layer fail-stops the victim (the first
  // batch may complete before the crash round arrives).
  for (u32 tries = 0; tries < 4 && store.shard_state(victim) != ShardState::kDead;
       ++tries) {
    (void)store.batch_get(gets);
  }
  ASSERT_EQ(store.shard_state(victim), ShardState::kDead);
  EXPECT_EQ(store.live_shards(), 3u);

  // Failover restores full availability with all acked writes.
  ASSERT_TRUE(store.failover(victim).ok());
  EXPECT_EQ(store.live_shards(), 4u);
  const auto after = store.batch_get(gets);
  for (u64 i = 0; i < gets.size(); ++i) {
    ASSERT_TRUE(after[i].status.ok());
    auto it = acked.find(gets[i]);
    EXPECT_EQ(after[i].found, it != acked.end());
    if (it != acked.end()) {
      EXPECT_EQ(after[i].value, it->second);
    }
  }
  store.check_invariants();
}

TEST(ShardedStore, SuccessorStitchingSpillsThroughEmptyAndAroundDeadShards) {
  ShardedPimStore store(small_opts());
  // One key per shard except shard 1, which stays empty: a successor
  // query in shard 0's upper range must spill through 1 into 2.
  const auto r0 = store.shard_range(0);
  const auto r2 = store.shard_range(2);
  const auto r3 = store.shard_range(3);
  std::vector<std::pair<Key, Value>> pairs = {
      {r0.second - 10, 100}, {r2.first + 5, 300}, {r3.first + 7, 400}};
  std::sort(pairs.begin(), pairs.end());
  store.build(pairs);

  const std::vector<Key> q = {r0.second - 5};  // after shard 0's only key
  auto res = store.batch_successor(q);
  ASSERT_TRUE(res[0].status.ok());
  ASSERT_TRUE(res[0].found);
  EXPECT_EQ(res[0].key, r2.first + 5);  // spilled across empty shard 1

  // Predecessor of a key in shard 2's lower range spills back to shard 0.
  auto pre = store.batch_predecessor(std::vector<Key>{r2.first + 1});
  ASSERT_TRUE(pre[0].status.ok());
  ASSERT_TRUE(pre[0].found);
  EXPECT_EQ(pre[0].key, r0.second - 10);

  // With shard 2 dead, the spilled successor cannot be determined — the
  // query answers kShardDown rather than skipping to shard 3's key.
  store.kill_shard(2);
  res = store.batch_successor(q);
  EXPECT_EQ(res[0].status.code(), StatusCode::kShardDown);
  // A query entirely within a live shard is unaffected.
  auto live = store.batch_successor(std::vector<Key>{r3.first});
  ASSERT_TRUE(live[0].status.ok());
  EXPECT_EQ(live[0].key, r3.first + 7);

  // Past the last key: found=false, not an error.
  auto end = store.batch_successor(std::vector<Key>{r3.first + 8});
  ASSERT_TRUE(end[0].status.ok());
  EXPECT_FALSE(end[0].found);
}

TEST(ShardedStore, ReviveRestoresInPlaceAndRecyclesDecommissionedVictims) {
  ShardedPimStore store(small_opts());
  rnd::Xoshiro256ss rng(0x12EE71Eu);
  const auto pairs = test::make_sorted_pairs(600, rng);
  store.build(pairs);
  Ref ref(pairs.begin(), pairs.end());

  // Revive-in-place: kill, revive, contents restored from the journal.
  store.kill_shard(3);
  store.revive_shard(3);
  EXPECT_EQ(store.shard_state(3), ShardState::kLive);
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  EXPECT_EQ(all.pairs.size(), ref.size());

  // Failover path: the victim is decommissioned, then revives as a spare
  // and can host the NEXT failover.
  store.kill_shard(0);
  ASSERT_TRUE(store.failover(0).ok());
  EXPECT_EQ(store.shard_state(0), ShardState::kDead);
  store.revive_shard(0);
  EXPECT_EQ(store.shard_state(0), ShardState::kSpare);

  store.kill_shard(1);
  ASSERT_TRUE(store.failover(1).ok());  // lands on recycled slot 0
  EXPECT_EQ(store.live_shards(), 4u);
  const auto again = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.pairs.size(), ref.size());
  store.check_invariants();

  // No spare left: a third failover reports the shortage.
  store.kill_shard(2);
  EXPECT_EQ(store.failover(2).code(), StatusCode::kInvalidArgument);
}

TEST(ShardedStore, OptionValidationRejectsMalformedConfigs) {
  const auto bad = [](auto&& mutate) {
    ShardOptions o;
    mutate(o);
    return shard::validate_shard_options(o).code();
  };
  EXPECT_TRUE(shard::validate_shard_options(small_opts()).ok());
  EXPECT_EQ(bad([](ShardOptions& o) { o.shards = 0; }), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) { o.modules_per_shard = 0; }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) { o.replication = 0; }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) { o.replication = 33; }),
            StatusCode::kInvalidArgument);  // read retarget is a 32-bit mask
  EXPECT_EQ(bad([](ShardOptions& o) { o.write_quorum = 0; }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) {
              o.replication = 2;
              o.write_quorum = 3;  // quorum > R can never ack
            }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) {
              // shards + spares slots cannot even seat one full group.
              o.shards = 2;
              o.spares = 1;
              o.replication = 4;
            }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) { o.journal_compact_limit = 0; }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) { o.migration_chunk = 0; }),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad([](ShardOptions& o) { o.domain_hi = o.domain_lo; }),
            StatusCode::kInvalidArgument);

  // The constructor refuses the same configs before provisioning any
  // machine, throwing the structured status.
  ShardOptions o = small_opts();
  o.replication = 0;
  EXPECT_THROW(ShardedPimStore{o}, StatusError);
}

TEST(ShardedStore, MidBatchKillKeepsAckedWritesAndDropsUnackedOnes) {
  // The ack-interleaving chaos case: the victim dies DURING a batch —
  // after other shards' positions were acked and journaled, before its
  // own wave completed. No acked position may be lost, no failed
  // position may become visible after failover.
  auto opts = small_opts();
  opts.shard_breaker_strikes = 1;
  ShardedPimStore store(opts);
  rnd::Xoshiro256ss rng(0xAC41Bu);
  const auto pairs = test::make_sorted_pairs(800, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  const u32 victim = 1;
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 0xBADF00Dull;
  // Crashes recur every few rounds over a long window, so whichever
  // round a write wave reaches, modules die mid-wave (module recovery
  // between batches cannot outrun the storm).
  const u64 at = store.shard_machine(victim)->rounds() + 2;
  for (u64 r = at; r < at + 400; r += 4) {
    for (u32 m = 0; m < opts.modules_per_shard; ++m) {
      plan.crashes.push_back(sim::CrashEvent{m, r});
    }
  }
  store.set_shard_fault_plan(victim, plan);

  u64 failed = 0;
  const auto write_batch = [&] {
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 64; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    const auto st = store.batch_upsert(ups);
    track_acked_upserts(acked, ups, st);
    for (const Status& s : st) failed += s.ok() ? 0 : 1;
  };
  // Drive batches until the health verdict lands. The kill happens at a
  // batch's merge — after that batch's surviving positions were already
  // acked and journaled.
  for (u32 batch = 0;
       batch < 6 && store.shard_state(victim) != ShardState::kDead; ++batch) {
    write_batch();
  }
  ASSERT_EQ(store.shard_state(victim), ShardState::kDead)
      << "the crash storm never fail-stopped the victim";
  // One more mixed batch against the half-dead fleet: the victim's
  // positions are refused (and must stay invisible), everyone else acks.
  write_batch();
  ASSERT_GT(failed, 0u) << "no position was rejected";

  ASSERT_TRUE(store.failover(victim).ok());
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  // Exact equality does both halves: every acked position survived the
  // journal replay, every non-acked position is invisible (keys that
  // existed before keep their pre-batch value).
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

// Regression pin for the deadline-propagation contract (DESIGN.md §5.10,
// ISSUE 9 satellite): a per-op deadline set once on the store must be
// enforced by every shard created AFTER the call — failover targets
// (journal replay into a spare), revived victims, and migration targets
// all go through provision(), which stamps the stored deadline onto the
// fresh skiplist. If provision() ever stops doing that, a replacement
// shard would silently serve without the budget the operator set fleet-
// wide, and this test fails both structurally (the accessor) and
// behaviorally (the replacement never surfaces kDeadlineExceeded).
TEST(ShardedStore, OpDeadlinePropagatesToReplacementShards) {
  ShardOptions o = small_opts();
  o.spares = 3;  // failover target + migration target + slack
  ShardedPimStore store(o);
  rnd::Xoshiro256ss rng(0xDEAD11AEu);
  const auto pairs = test::make_sorted_pairs(1200, rng);
  store.build(pairs);

  const core::PimSkipList::OpDeadline d{/*max_rounds=*/0, /*max_retries=*/2};
  store.set_op_deadline(d);
  for (u32 s = 0; s < store.slots(); ++s) {
    if (store.shard_state(s) != ShardState::kLive) continue;
    EXPECT_EQ(store.shard_op_deadline(s).max_retries, d.max_retries)
        << "live slot " << s << " missed the fleet-wide deadline";
  }

  // --- Failover target (journal replay into a spare). ---
  const Key probe = pairs[100].first;
  const u32 victim = store.route(probe);
  store.kill_shard(victim);
  ASSERT_TRUE(store.failover(victim).ok());
  const u32 replacement = store.route(probe);
  ASSERT_NE(replacement, victim);
  EXPECT_EQ(store.shard_op_deadline(replacement).max_retries, d.max_retries)
      << "failover target was provisioned without the deadline";

  // Behavioral half: the replacement actually enforces the budget. Make
  // only the replacement flaky (95% drops eat retransmissions) — a
  // 2-retry budget cannot drain a sub-batch through that link, so every
  // key the replacement owns must surface kDeadlineExceeded, while keys
  // owned by healthy shards keep completing.
  ASSERT_TRUE(store.flaky_shard(replacement, 0.95).ok());
  std::vector<Key> owned, foreign;
  for (const auto& [k, v] : pairs) {
    (store.route(k) == replacement ? owned : foreign).push_back(k);
    if (owned.size() >= 8 && foreign.size() >= 8) break;
  }
  ASSERT_GE(owned.size(), 1u);
  const auto got = store.batch_get(owned);
  for (u64 i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(got[i].status.code(), StatusCode::kDeadlineExceeded)
        << "replacement shard served key " << owned[i]
        << " without enforcing the propagated deadline: "
        << got[i].status.to_string();
  }
  const auto fine = store.batch_get(foreign);
  for (u64 i = 0; i < foreign.size(); ++i) {
    EXPECT_TRUE(fine[i].status.ok()) << fine[i].status.to_string();
  }
  ASSERT_TRUE(store.clear_shard_chaos(replacement).ok());

  // --- Revive target (in-place rebuild; victim comes back as a spare
  // with a freshly provisioned structure). ---
  store.revive_shard(victim);
  EXPECT_EQ(store.shard_op_deadline(victim).max_retries, d.max_retries)
      << "revived slot was provisioned without the deadline";

  // --- Migration target (chunked copy onto a spare, then cutover). ---
  const u32 source = store.route(pairs[700].first);
  const auto [lo, hi] = store.shard_range(source);
  Key split = 0;
  u64 in_range = 0;
  for (const auto& [k, v] : pairs) {
    if (k > lo && k < hi) {
      ++in_range;
      if (in_range == 8) split = k;  // strictly inside, non-degenerate
    }
  }
  ASSERT_GT(split, lo);
  ASSERT_TRUE(store.start_migration(source, split).ok());
  while (store.migration_active()) {
    ASSERT_TRUE(store.migration_step().ok());
  }
  for (u32 s = 0; s < store.slots(); ++s) {
    if (store.shard_state(s) != ShardState::kLive) continue;
    EXPECT_EQ(store.shard_op_deadline(s).max_retries, d.max_retries)
        << "slot " << s << " lost the deadline across migration";
  }
  store.check_invariants();
}

}  // namespace
}  // namespace pim
