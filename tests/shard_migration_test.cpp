// Online range migration tests (DESIGN.md §5.10): a hot shard's upper
// range streams to a spare while writes keep landing, cross-shard range
// queries stay bit-identical to a single-Machine PimSkipList oracle
// throughout, and a crash of either end mid-migration loses nothing and
// duplicates nothing (ownership moves only at cutover).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/pim_skiplist.hpp"
#include "reference_model.hpp"
#include "shard/sharded_store.hpp"
#include "sim/machine.hpp"
#include "test_util.hpp"

namespace pim {
namespace {

using shard::ShardOptions;
using shard::ShardState;
using shard::ShardedPimStore;
using test::Ref;

ShardOptions migration_opts() {
  ShardOptions o;
  o.shards = 4;
  o.spares = 1;
  o.modules_per_shard = 8;
  o.domain_lo = 0;
  o.domain_hi = 1'000'000'000;
  o.migration_chunk = 64;
  return o;
}

/// Zipf-flavored key draw: half the mass lands in one narrow hot band
/// inside shard `hot`'s range, the rest is uniform over the domain.
Key skewed_key(rnd::Xoshiro256ss& rng, const std::pair<Key, Key>& hot_range) {
  if (rng.below(2) == 0) {
    const Key lo = hot_range.first;
    const Key hi = hot_range.first + (hot_range.second - hot_range.first) / 8;
    return rng.range(lo, hi);
  }
  return rng.range(0, 1'000'000'000);
}

TEST(ShardMigration, StreamsUnderWritesAndStaysOracleIdentical) {
  ShardedPimStore store(migration_opts());
  // Single-Machine oracle holding the same logical contents.
  sim::Machine oracle_machine(16);
  core::PimSkipList oracle(oracle_machine, {});

  rnd::Xoshiro256ss rng(0x316AA7Eu);
  const auto pairs = test::make_sorted_pairs(2000, rng);
  store.build(pairs);
  oracle.build(pairs);
  Ref ref(pairs.begin(), pairs.end());

  const u32 hot = 1;
  const auto hot_range = store.shard_range(hot);
  const Key split = hot_range.first + (hot_range.second - hot_range.first) / 2;
  ASSERT_TRUE(store.start_migration(hot, split).ok());
  ASSERT_TRUE(store.migration_active());
  const u32 target = store.migration_info()->target;

  // Drive the copy pass to completion, interleaving every step with a
  // write batch that hammers the moving range, plus cross-shard reads
  // that must stay bit-identical to the oracle mid-migration.
  u32 steps = 0;
  while (store.migration_active()) {
    const auto st = store.migration_step();
    ASSERT_TRUE(st.ok()) << st.to_string();
    ++steps;

    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 24; ++i) ups.emplace_back(skewed_key(rng, hot_range), rng());
    const auto ust = store.batch_upsert(ups);
    for (const Status& s : ust) ASSERT_TRUE(s.ok());
    oracle.batch_upsert(ups);
    test::ref_upsert(ref, ups);

    std::vector<Key> dels;
    for (u32 i = 0; i < 4; ++i) dels.push_back(test::existing_key(ref, rng));
    const auto dst = store.batch_delete(dels);
    for (const auto& r : dst) ASSERT_TRUE(r.status.ok());
    (void)oracle.batch_delete(dels);
    (void)test::ref_delete(ref, dels);

    // Cross-shard range query spanning the split point, diffed against
    // the single-Machine oracle bit for bit.
    const Key qlo = split - 40'000'000, qhi = split + 40'000'000;
    const auto got = store.range_aggregate(qlo, qhi);
    ASSERT_TRUE(got.status.ok());
    const auto want = oracle.range_count_broadcast(qlo, qhi);
    ASSERT_EQ(got.agg.count, want.count) << "mid-migration step " << steps;
    ASSERT_EQ(got.agg.sum, want.sum);

    std::vector<Key> near = {split - 1, split, split + 1,
                             skewed_key(rng, hot_range)};
    const auto ssucc = store.batch_successor(near);
    const auto osucc = oracle.batch_successor(near);
    for (u64 i = 0; i < near.size(); ++i) {
      ASSERT_TRUE(ssucc[i].status.ok());
      ASSERT_EQ(ssucc[i].found, osucc[i].found);
      if (osucc[i].found) {
        ASSERT_EQ(ssucc[i].key, osucc[i].key);
      }
    }
    ASSERT_LT(steps, 1000u) << "migration failed to converge";
  }

  // Cutover happened: the target owns [split, hi) and is live.
  EXPECT_EQ(store.shard_state(target), ShardState::kLive);
  EXPECT_EQ(store.route(split), target);
  EXPECT_EQ(store.route(split - 1), hot);
  EXPECT_EQ(store.shard_range(hot).second, split);
  EXPECT_EQ(store.shard_range(target), std::make_pair(split, hot_range.second));

  // Neither loss nor duplication: the full collect equals the reference
  // exactly (a duplicated key would inflate the count, a lost one would
  // shrink it, a stale value would break equality).
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, expect);
  EXPECT_EQ(store.size(), ref.size());
  store.check_invariants();

  // The freed spare pool is empty now; a second migration is refused
  // until a spare is available, and exclusivity held throughout.
  EXPECT_EQ(store.start_migration(hot, split / 2).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardMigration, ExclusiveWhileActive) {
  ShardedPimStore store(migration_opts());
  rnd::Xoshiro256ss rng(0xE8C15u);
  store.build(test::make_sorted_pairs(500, rng));
  const auto r1 = store.shard_range(1);
  ASSERT_TRUE(store.start_migration(1, (r1.first + r1.second) / 2).ok());
  EXPECT_EQ(store.start_migration(2, 600'000'000).code(),
            StatusCode::kMigrationInProgress);
  EXPECT_EQ(store.migration_step().code(), StatusCode::kOk);
}

TEST(ShardMigration, PickMigrationFindsTheHotShardAndMedianSplit) {
  ShardedPimStore store(migration_opts());
  rnd::Xoshiro256ss rng(0x907'5407u);
  store.build(test::make_sorted_pairs(1600, rng));
  store.reset_load_stats();

  // Hammer shard 2 only.
  const auto hot_range = store.shard_range(2);
  for (u32 round = 0; round < 6; ++round) {
    std::vector<Key> gets;
    for (u32 i = 0; i < 64; ++i) {
      gets.push_back(rng.range(hot_range.first, hot_range.second - 1));
    }
    (void)store.batch_get(gets);
  }
  const auto load = store.shard_load(2);
  EXPECT_GT(load.io_share, 0.5);

  const auto plan = store.pick_migration(1.5);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->source, 2u);
  EXPECT_GT(plan->split_key, hot_range.first);
  EXPECT_LT(plan->split_key, hot_range.second);

  // The picked plan actually starts and runs to completion.
  ASSERT_TRUE(store.start_migration(plan->source, plan->split_key).ok());
  u32 guard = 0;
  while (store.migration_active() && guard++ < 1000) {
    ASSERT_TRUE(store.migration_step().ok());
  }
  ASSERT_FALSE(store.migration_active());
  store.check_invariants();
}

TEST(ShardMigration, SourceCrashMidMigrationLosesNothing) {
  ShardedPimStore store(migration_opts());
  rnd::Xoshiro256ss rng(0xC4A51AAu);
  const auto pairs = test::make_sorted_pairs(1500, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  const u32 hot = 1;
  const auto hot_range = store.shard_range(hot);
  const Key split = hot_range.first + (hot_range.second - hot_range.first) / 2;
  ASSERT_TRUE(store.start_migration(hot, split).ok());
  const u32 target = store.migration_info()->target;

  // A few chunks copy, writes land in the moving range and are acked.
  for (u32 i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.migration_step().ok());
    std::vector<std::pair<Key, Value>> ups;
    for (u32 j = 0; j < 16; ++j) {
      ups.emplace_back(rng.range(split, hot_range.second - 1), rng());
    }
    const auto st = store.batch_upsert(ups);
    std::set<Key> seen;
    for (u64 j = 0; j < ups.size(); ++j) {
      if (seen.insert(ups[j].first).second && st[j].ok()) {
        acked[ups[j].first] = ups[j].second;
      }
    }
  }
  ASSERT_TRUE(store.migration_active());

  // Crash the source mid-copy: the migration aborts (staged copy
  // discarded, target recycled to spare), and failover replays the
  // source's journal — which still owns the WHOLE range, including every
  // write acked during the migration.
  store.kill_shard(hot);
  EXPECT_FALSE(store.migration_active());
  EXPECT_EQ(store.shard_state(target), ShardState::kSpare);
  ASSERT_TRUE(store.failover(hot).ok());
  EXPECT_EQ(store.live_shards(), 4u);

  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);  // nothing lost, nothing duplicated
  store.check_invariants();
}

TEST(ShardMigration, TargetCrashMidMigrationLeavesSourceExact) {
  ShardedPimStore store(migration_opts());
  rnd::Xoshiro256ss rng(0x7A46E7u);
  const auto pairs = test::make_sorted_pairs(1500, rng);
  store.build(pairs);
  Ref ref(pairs.begin(), pairs.end());

  const u32 hot = 2;
  const auto hot_range = store.shard_range(hot);
  const Key split = hot_range.first + (hot_range.second - hot_range.first) / 2;
  ASSERT_TRUE(store.start_migration(hot, split).ok());
  const u32 target = store.migration_info()->target;
  for (u32 i = 0; i < 3; ++i) ASSERT_TRUE(store.migration_step().ok());

  // Crash the TARGET: ownership never moved, so the source still serves
  // the full range exactly; the migration just unwinds.
  store.kill_shard(target);
  EXPECT_FALSE(store.migration_active());
  EXPECT_EQ(store.shard_state(hot), ShardState::kLive);
  EXPECT_EQ(store.route(split), hot);

  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, expect);

  // The repaired target revives as a spare and a fresh migration
  // completes end to end.
  store.revive_shard(target);
  EXPECT_EQ(store.shard_state(target), ShardState::kSpare);
  ASSERT_TRUE(store.start_migration(hot, split).ok());
  u32 guard = 0;
  while (store.migration_active() && guard++ < 1000) {
    ASSERT_TRUE(store.migration_step().ok());
  }
  const auto after = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.pairs, expect);
  store.check_invariants();
}

}  // namespace
}  // namespace pim
