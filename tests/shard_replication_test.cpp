// R-way replication tests (DESIGN.md §5.11): every range is owned by a
// group of R independent shards. Writes quorum across the live members,
// reads retarget past dead ones, so up to R-1 deaths per group cause
// zero unavailability and zero lost acks — pinned here by randomized
// kill/revive chaos diffed against a single-Machine oracle bit for bit.
// Anti-entropy converges divergent members (including rolling back
// writes that never reached quorum) on the group journal's replay, and
// background repair rebuilds a dead member onto a spare while writes
// keep landing. The ShardPolicy loop drives all of it autonomously —
// covered both deterministically (manual step()) and with the real
// background thread under a concurrent workload (the TSan job runs this
// binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "core/pim_skiplist.hpp"
#include "reference_model.hpp"
#include "shard/policy.hpp"
#include "shard/sharded_store.hpp"
#include "sim/machine.hpp"
#include "test_util.hpp"

namespace pim {
namespace {

using shard::AntiEntropyReport;
using shard::PolicyOptions;
using shard::ShardOptions;
using shard::ShardPolicy;
using shard::ShardState;
using shard::ShardedPimStore;
using test::Ref;

ShardOptions replicated_opts(u32 replication, u32 shards = 3, u32 spares = 0) {
  ShardOptions o;
  o.shards = shards;
  o.spares = spares;
  o.replication = replication;
  o.modules_per_shard = 8;
  o.domain_lo = 0;
  o.domain_hi = 1'000'000'000;
  o.migration_chunk = 64;
  return o;
}

/// Applies per-position upsert acks to the tracker (first occurrence of a
/// duplicate key wins, matching the batch contract).
void track_acked_upserts(Ref& acked, std::span<const std::pair<Key, Value>> ops,
                         const std::vector<Status>& st) {
  std::map<Key, u64> first;
  for (u64 i = 0; i < ops.size(); ++i) first.try_emplace(ops[i].first, i);
  for (const auto& [k, i] : first) {
    if (st[i].ok()) acked[k] = ops[i].second;
  }
}

void track_acked_deletes(Ref& acked, std::span<const Key> keys,
                         const std::vector<ShardedPimStore::FlagResult>& st) {
  for (u64 i = 0; i < keys.size(); ++i) {
    if (st[i].status.ok()) acked.erase(keys[i]);
  }
}

/// Every live member of every group holds exactly the journal's replay.
void expect_converged(const ShardedPimStore& store) {
  for (u32 g = 0; g < store.group_count(); ++g) {
    const u64 want = store.group_expected_digest(g);
    for (const u32 slot : store.group_members(g)) {
      if (store.shard_state(slot) != ShardState::kLive) continue;
      EXPECT_EQ(store.member_digest(slot), want)
          << "group " << g << " member slot " << slot << " diverged";
    }
  }
}

// ---------------------------------------------------------------------
// Tentpole: randomized kill/revive chaos at R = 3. As long as every
// group keeps at least one live member, every operation succeeds and
// every answer is bit-identical to a single-Machine PimSkipList oracle.
// ---------------------------------------------------------------------

TEST(ShardReplication, ChaosKillReviveIsOracleIdenticalWithZeroDowntime) {
  ShardedPimStore store(replicated_opts(3));
  sim::Machine oracle_machine(16);
  core::PimSkipList oracle(oracle_machine, {});

  rnd::Xoshiro256ss rng(0x2EB71CAu);
  const auto pairs = test::make_sorted_pairs(1200, rng);
  store.build(pairs);
  oracle.build(pairs);
  Ref ref(pairs.begin(), pairs.end());

  u32 kills = 0, revives = 0;
  for (u32 round = 0; round < 60; ++round) {
    // Chaos: flip a random slot, never dropping a group below one live
    // member (R-1 = 2 simultaneous deaths per group are allowed).
    const u32 slot = static_cast<u32>(rng.below(store.slots()));
    const u32 g = store.group_of(slot);
    if (store.shard_state(slot) == ShardState::kLive && g != shard::kNoGroup &&
        store.group_live_members(g) > 1) {
      store.kill_shard(slot);
      ++kills;
    } else if (store.shard_state(slot) == ShardState::kDead) {
      store.revive_shard(slot);
      ++revives;
    }

    // Writes: every position must ack — a degraded group still quorums
    // on its survivors (write_quorum = 1).
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 24; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    const auto ust = store.batch_upsert(ups);
    for (const Status& s : ust) ASSERT_TRUE(s.ok()) << s.to_string();
    oracle.batch_upsert(ups);
    test::ref_upsert(ref, ups);

    std::vector<std::pair<Key, Value>> upd;
    for (u32 i = 0; i < 6; ++i) upd.emplace_back(test::existing_key(ref, rng), rng());
    const auto urs = store.batch_update(upd);
    (void)oracle.batch_update(upd);
    const auto uflags = test::ref_update(ref, upd);
    for (u64 i = 0; i < upd.size(); ++i) {
      ASSERT_TRUE(urs[i].status.ok()) << urs[i].status.to_string();
      EXPECT_EQ(urs[i].found, uflags[i] != 0);
    }

    std::vector<Key> dels;
    for (u32 i = 0; i < 4; ++i) dels.push_back(test::existing_key(ref, rng));
    const auto drs = store.batch_delete(dels);
    (void)oracle.batch_delete(dels);
    const auto dflags = test::ref_delete(ref, dels);
    for (u64 i = 0; i < dels.size(); ++i) {
      ASSERT_TRUE(drs[i].status.ok()) << drs[i].status.to_string();
      EXPECT_EQ(drs[i].found, dflags[i] != 0);
    }

    // Reads retarget past dead primaries transparently.
    std::vector<Key> gets;
    for (u32 i = 0; i < 8; ++i) gets.push_back(rng.range(0, 1'000'000'000));
    for (u32 i = 0; i < 4; ++i) gets.push_back(test::existing_key(ref, rng));
    const auto grs = store.batch_get(gets);
    for (u64 i = 0; i < gets.size(); ++i) {
      ASSERT_TRUE(grs[i].status.ok()) << grs[i].status.to_string();
      const auto it = ref.find(gets[i]);
      ASSERT_EQ(grs[i].found, it != ref.end());
      if (it != ref.end()) {
        ASSERT_EQ(grs[i].value, it->second);
      }
    }

    // Ordered queries stitch across groups whose primaries may be dead.
    std::vector<Key> near;
    for (u32 i = 0; i < 4; ++i) near.push_back(rng.range(0, 1'000'000'000));
    const auto ssucc = store.batch_successor(near);
    const auto osucc = oracle.batch_successor(near);
    const auto spred = store.batch_predecessor(near);
    const auto opred = oracle.batch_predecessor(near);
    for (u64 i = 0; i < near.size(); ++i) {
      ASSERT_TRUE(ssucc[i].status.ok()) << ssucc[i].status.to_string();
      ASSERT_EQ(ssucc[i].found, osucc[i].found);
      if (osucc[i].found) {
        ASSERT_EQ(ssucc[i].key, osucc[i].key);
      }
      ASSERT_TRUE(spred[i].status.ok()) << spred[i].status.to_string();
      ASSERT_EQ(spred[i].found, opred[i].found);
      if (opred[i].found) {
        ASSERT_EQ(spred[i].key, opred[i].key);
      }
    }

    const Key qlo = rng.range(0, 900'000'000);
    const Key qhi = qlo + rng.range(1, 100'000'000);
    const auto agg = store.range_aggregate(qlo, qhi);
    ASSERT_TRUE(agg.status.ok()) << agg.status.to_string();
    const auto want = oracle.range_count_broadcast(qlo, qhi);
    ASSERT_EQ(agg.agg.count, want.count) << "round " << round;
    ASSERT_EQ(agg.agg.sum, want.sum);

    // Periodic audit slice mid-chaos: live members never drift from the
    // acked state (every member applies every acked write).
    if (round % 15 == 14) {
      (void)store.anti_entropy_step(store.group_count());
      expect_converged(store);
    }
  }
  EXPECT_GT(kills, 5u) << "chaos plan never killed anything";
  EXPECT_GT(revives, 0u);

  // Quiesce: revive everything, audit every group, and diff the full
  // contents against the reference — zero lost acks, nothing extra.
  for (u32 s = 0; s < store.slots(); ++s) {
    if (store.shard_state(s) == ShardState::kDead) store.revive_shard(s);
  }
  const AntiEntropyReport rep = store.anti_entropy_step(store.group_count());
  EXPECT_EQ(rep.groups_audited, store.group_count());
  expect_converged(store);
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(ref.begin(), ref.end());
  EXPECT_EQ(all.pairs, expect);
  EXPECT_EQ(store.size(), ref.size());
  store.check_invariants();
}

// ---------------------------------------------------------------------
// R-1 simultaneous deaths in one group: zero unavailability, zero lost
// acks; only the R-th death makes the group unavailable, and journal
// failover (the last-resort path) still restores exactly the acked set.
// ---------------------------------------------------------------------

TEST(ShardReplication, RMinusOneSimultaneousDeathsLoseNothing) {
  ShardedPimStore store(replicated_opts(3, /*shards=*/2, /*spares=*/1));
  rnd::Xoshiro256ss rng(0xD0A11Bu);
  const auto pairs = test::make_sorted_pairs(800, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  const auto write_some = [&] {
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 32; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    track_acked_upserts(acked, ups, store.batch_upsert(ups));
    std::vector<Key> dels;
    for (u32 i = 0; i < 4; ++i) dels.push_back(test::existing_key(acked, rng));
    track_acked_deletes(acked, dels, store.batch_delete(dels));
  };
  write_some();

  // Kill R-1 = 2 of group 0's members at once.
  const auto members = store.group_members(0);
  ASSERT_EQ(members.size(), 3u);
  store.kill_shard(members[0]);
  store.kill_shard(members[1]);
  ASSERT_EQ(store.group_live_members(0), 1u);

  // Still fully available: reads and writes on the survivor all ack.
  for (u32 i = 0; i < 4; ++i) write_some();
  auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);

  // The R-th death takes the whole group down: its keys answer
  // kShardDown (the PR 6 degraded contract), other groups keep serving.
  store.kill_shard(members[2]);
  ASSERT_EQ(store.group_live_members(0), 0u);
  const Key in_dead = store.group_range(0).first + 1;
  const auto gres = store.batch_get(std::vector<Key>{in_dead});
  EXPECT_EQ(gres[0].status.code(), StatusCode::kShardDown);

  // Whole-group loss is journal-failover territory: replay into the
  // spare restores every acked write, loses every unacked one.
  ASSERT_TRUE(store.failover(members[2]).ok());
  ASSERT_GE(store.group_live_members(0), 1u);
  all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  expect.assign(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Quorum semantics: a write reaching fewer than write_quorum live
// members answers kNoQuorum, is NOT journaled, and anti-entropy rolls
// it back off the member that transiently applied it.
// ---------------------------------------------------------------------

TEST(ShardReplication, BelowQuorumWritesAreRefusedAndRolledBack) {
  auto opts = replicated_opts(2, /*shards=*/2, /*spares=*/0);
  opts.write_quorum = 2;
  ShardedPimStore store(opts);
  rnd::Xoshiro256ss rng(0x9007AAu);
  const auto pairs = test::make_sorted_pairs(400, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  // Pick a fresh key and an existing key inside group 0's range.
  const auto [g0lo, g0hi] = store.group_range(0);
  Key fresh = g0lo + 12345;
  while (acked.contains(fresh)) ++fresh;
  const Key existing = acked.lower_bound(g0lo) != acked.end() &&
                               acked.lower_bound(g0lo)->first < g0hi
                           ? acked.lower_bound(g0lo)->first
                           : fresh - 1;
  ASSERT_TRUE(acked.contains(existing));
  const Value old_value = acked[existing];

  // With both members live, quorum-2 writes ack normally.
  auto st = store.batch_upsert(
      std::vector<std::pair<Key, Value>>{{existing, old_value}});
  ASSERT_TRUE(st[0].ok());

  // Kill one member: one live replica < write_quorum = 2.
  const u32 dead = store.group_members(0)[0];
  store.kill_shard(dead);
  const u64 journal_before = store.group_journal_records(0);

  st = store.batch_upsert(std::vector<std::pair<Key, Value>>{{fresh, 777}});
  ASSERT_EQ(st[0].code(), StatusCode::kNoQuorum) << st[0].to_string();
  const auto urs = store.batch_update(
      std::vector<std::pair<Key, Value>>{{existing, old_value + 1}});
  ASSERT_EQ(urs[0].status.code(), StatusCode::kNoQuorum);
  // Refused writes are never journaled (they are not acked).
  EXPECT_EQ(store.group_journal_records(0), journal_before);

  // The surviving replica transiently applied them, but the refusal
  // marked the group dirty, so the read path converges the serving
  // member against the journal replay BEFORE answering: the refused
  // writes are never visible (the read-uncommitted window is closed).
  auto grs = store.batch_get(std::vector<Key>{fresh, existing});
  ASSERT_TRUE(grs[0].status.ok());
  EXPECT_FALSE(grs[0].found) << "refused write visible to a read";
  ASSERT_TRUE(grs[1].status.ok());
  EXPECT_EQ(grs[1].value, old_value);

  // Anti-entropy then finds the members already converged on the acked
  // state (the read path rolled the survivor back; revive rebuilds the
  // dead member from the same replay).
  store.revive_shard(dead);
  store.anti_entropy_step(store.group_count());
  expect_converged(store);
  grs = store.batch_get(std::vector<Key>{fresh, existing});
  ASSERT_TRUE(grs[0].status.ok());
  EXPECT_FALSE(grs[0].found) << "unacked write survived anti-entropy";
  ASSERT_TRUE(grs[1].status.ok());
  EXPECT_EQ(grs[1].value, old_value);

  // Back at full strength, quorum-2 writes ack again and journal
  // (revive compacted the journal into the checkpoint, so re-sample).
  const u64 journal_after_revive = store.group_journal_records(0);
  st = store.batch_upsert(std::vector<std::pair<Key, Value>>{{fresh, 778}});
  ASSERT_TRUE(st[0].ok());
  EXPECT_GT(store.group_journal_records(0), journal_after_revive);
  store.check_invariants();
}

// Escalation: a divergence bigger than anti_entropy_rebuild_threshold is
// rebuilt offline instead of read-repaired key by key.
TEST(ShardReplication, AntiEntropyEscalatesLargeDivergenceToRebuild) {
  auto opts = replicated_opts(2, /*shards=*/2, /*spares=*/0);
  opts.write_quorum = 2;
  opts.anti_entropy_rebuild_threshold = 0;  // any diff escalates
  ShardedPimStore store(opts);
  rnd::Xoshiro256ss rng(0x5CA1Eu);
  const auto pairs = test::make_sorted_pairs(300, rng);
  store.build(pairs);

  const u32 dead = store.group_members(0)[0];
  store.kill_shard(dead);
  // A spray of no-quorum writes leaves the survivor far off the acked
  // state.
  std::vector<std::pair<Key, Value>> ups;
  // Group 0 owns the open left end (lo == kMinKey), so draw from the
  // configured domain floor instead of the route boundary.
  const Key g0hi = store.group_range(0).second;
  for (u32 i = 0; i < 48; ++i) {
    ups.emplace_back(rng.range(1, g0hi - 1), rng());
  }
  for (const Status& s : store.batch_upsert(ups)) {
    ASSERT_EQ(s.code(), StatusCode::kNoQuorum);
  }

  store.revive_shard(dead);
  const AntiEntropyReport rep = store.anti_entropy_step(store.group_count());
  EXPECT_GE(rep.divergent, 1u);
  EXPECT_GE(rep.rebuilds, 1u);
  expect_converged(store);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Background re-replication: a dead member is rebuilt onto a spare by
// chunked copy + delta drain while writes keep landing, then installed
// in the dead slot's place without a pause.
// ---------------------------------------------------------------------

TEST(ShardReplication, RepairRebuildsDeadMemberOnlineUnderWrites) {
  ShardedPimStore store(replicated_opts(2, /*shards=*/2, /*spares=*/1));
  rnd::Xoshiro256ss rng(0x4EFA12u);
  const auto pairs = test::make_sorted_pairs(900, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  const u32 dead = store.group_members(0)[1];
  store.kill_shard(dead);
  ASSERT_FALSE(store.group_fully_replicated(0));

  const auto picked = store.pick_repair();
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(*picked, 0u);
  ASSERT_TRUE(store.start_repair(*picked).ok());
  ASSERT_TRUE(store.repair_active());
  const u32 target = store.repair_info()->target;
  EXPECT_EQ(store.repair_info()->dead_slot, dead);

  // Writes into the group's range keep acking mid-repair; the delta tee
  // carries them onto the rebuilt member.
  // Group 0 owns the open left end (lo == kMinKey); draw from the domain
  // floor so the span arithmetic stays in range.
  const Key hi = store.group_range(0).second;
  u32 steps = 0;
  while (store.repair_active()) {
    const Status st = store.repair_step();
    ASSERT_TRUE(st.ok()) << st.to_string();
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 16; ++i) {
      ups.emplace_back(rng.range(1, hi - 1), rng());
    }
    track_acked_upserts(acked, ups, store.batch_upsert(ups));
    std::vector<Key> dels = {test::existing_key(acked, rng)};
    track_acked_deletes(acked, dels, store.batch_delete(dels));
    ASSERT_LT(++steps, 1000u) << "repair failed to converge";
  }

  // Installed: the group is back at full strength, the new member is
  // digest-identical to the acked state, the dead rack is decommissioned.
  EXPECT_TRUE(store.group_fully_replicated(0));
  EXPECT_EQ(store.group_of(target), 0u);
  EXPECT_EQ(store.shard_state(target), ShardState::kLive);
  EXPECT_EQ(store.member_digest(target), store.group_expected_digest(0));
  EXPECT_EQ(store.group_of(dead), shard::kNoGroup);
  store.revive_shard(dead);
  EXPECT_EQ(store.shard_state(dead), ShardState::kSpare);

  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Policy loop, deterministic (interval_ms = 0, manual step()): detects
// the kill, demotes the primary, rebuilds R onto a spare under a write
// workload, then triggers a load-driven migration — no caller
// choreography beyond step().
// ---------------------------------------------------------------------

TEST(ShardReplication, PolicyLoopRepairsThenMigratesUnderLoad) {
  ShardedPimStore store(replicated_opts(2, /*shards=*/2, /*spares=*/2));
  rnd::Xoshiro256ss rng(0x90110Cu);
  const auto pairs = test::make_sorted_pairs(800, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  PolicyOptions popts;
  popts.interval_ms = 0;  // no thread: step() by hand
  popts.movement_steps = 4;
  popts.hot_share_factor = 1.3;
  ShardPolicy policy(store, popts);

  // Phase 1: kill group 0's primary. The policy must demote it, start a
  // repair, and complete the install — while writes keep landing.
  store.kill_shard(store.group_primary(0));
  u32 ticks = 0;
  while (policy.stats().repairs_completed < 1) {
    policy.step();
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 16; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
    track_acked_upserts(acked, ups, store.batch_upsert(ups));
    ASSERT_LT(++ticks, 400u) << "policy never completed the repair";
  }
  EXPECT_GE(policy.stats().demotions, 1u);
  EXPECT_GE(policy.stats().repairs_started, 1u);
  EXPECT_TRUE(store.group_fully_replicated(0));

  // Phase 2: hammer group 1's range; the policy's planner must fire and
  // carve the hot range onto the remaining spare.
  store.reset_load_stats();
  const auto [hlo, hhi] = store.group_range(1);
  const u32 groups_before = store.group_count();
  ticks = 0;
  while (policy.stats().migrations_completed < 1) {
    std::vector<std::pair<Key, Value>> ups;
    for (u32 i = 0; i < 24; ++i) {
      ups.emplace_back(hlo + 1 + rng.range(0, hhi - hlo - 1), rng());
    }
    track_acked_upserts(acked, ups, store.batch_upsert(ups));
    std::vector<Key> gets;
    for (u32 i = 0; i < 16; ++i) gets.push_back(hlo + 1 + rng.range(0, hhi - hlo - 1));
    for (const auto& r : store.batch_get(gets)) ASSERT_TRUE(r.status.ok());
    policy.step();
    ASSERT_LT(++ticks, 400u) << "policy never completed a migration";
  }
  EXPECT_GE(policy.stats().migrations_started, 1u);
  EXPECT_EQ(store.group_count(), groups_before + 1);

  // Zero lost acks across the whole autonomous sequence.
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

// ---------------------------------------------------------------------
// Policy loop, real background thread + concurrent workload holding
// policy.mu() per call — the threading contract the TSan job checks.
// ---------------------------------------------------------------------

TEST(ShardReplication, PolicyThreadRunsConcurrentlyWithWorkload) {
  ShardedPimStore store(replicated_opts(2, /*shards=*/2, /*spares=*/2));
  rnd::Xoshiro256ss rng(0x75A17u);
  const auto pairs = test::make_sorted_pairs(500, rng);
  store.build(pairs);
  Ref acked(pairs.begin(), pairs.end());

  PolicyOptions popts;
  popts.interval_ms = 1;
  popts.movement_steps = 8;
  popts.enable_migration = false;  // keep the end state deterministic
  ShardPolicy policy(store, popts);

  // Workload: batches under the policy lock, with a mid-run member kill
  // the policy thread must notice and repair on its own.
  bool killed = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (u32 iter = 0;; ++iter) {
    {
      std::lock_guard<std::mutex> l(policy.mu());
      std::vector<std::pair<Key, Value>> ups;
      for (u32 i = 0; i < 8; ++i) ups.emplace_back(rng.range(0, 1'000'000'000), rng());
      track_acked_upserts(acked, ups, store.batch_upsert(ups));
      std::vector<Key> gets;
      for (u32 i = 0; i < 8; ++i) gets.push_back(test::existing_key(acked, rng));
      for (const auto& r : store.batch_get(gets)) ASSERT_TRUE(r.status.ok());
      if (!killed && iter == 20) {
        store.kill_shard(store.group_members(1)[0]);
        killed = true;
      }
    }
    if (killed && policy.stats().repairs_completed >= 1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "policy thread never repaired the killed member";
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  policy.stop();

  EXPECT_GE(policy.stats().ticks, 1u);
  EXPECT_TRUE(store.group_fully_replicated(1));
  (void)store.anti_entropy_step(store.group_count());
  expect_converged(store);
  const auto all = store.range_collect(kMinKey, kMaxKey);
  ASSERT_TRUE(all.status.ok());
  const std::vector<std::pair<Key, Value>> expect(acked.begin(), acked.end());
  EXPECT_EQ(all.pairs, expect);
  store.check_invariants();
}

}  // namespace
}  // namespace pim
