// Basic PimSkipList tests: construction, offline build, invariants, and
// the §4.1 batched Get/Update path, parameterized over module counts.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pim_skiplist.hpp"
#include "sim/measure.hpp"
#include "test_util.hpp"

namespace pim::core {
namespace {

using test::RefModel;

class SkipListBasic : public ::testing::TestWithParam<u32> {};

TEST_P(SkipListBasic, EmptyStructureInvariants) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  list.check_invariants();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.h_low(), std::max<u32>(1, ceil_log2(GetParam())));
}

TEST_P(SkipListBasic, BuildAndInvariants) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(42);
  const auto pairs = test::make_sorted_pairs(500, rng);
  list.build(pairs);
  EXPECT_EQ(list.size(), pairs.size());
  list.check_invariants();
}

TEST_P(SkipListBasic, BatchGetFindsBuiltKeys) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(7);
  const auto pairs = test::make_sorted_pairs(300, rng);
  list.build(pairs);

  std::vector<Key> keys;
  for (const auto& [k, v] : pairs) keys.push_back(k);
  // Plus some misses.
  for (int i = 0; i < 50; ++i) keys.push_back(rng.range(2'000'000'000, 3'000'000'000));

  const auto results = list.batch_get(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (u64 i = 0; i < pairs.size(); ++i) {
    EXPECT_TRUE(results[i].found) << "key " << keys[i];
    EXPECT_EQ(results[i].value, pairs[i].second);
  }
  for (u64 i = pairs.size(); i < keys.size(); ++i) {
    EXPECT_FALSE(results[i].found) << "key " << keys[i];
  }
}

TEST_P(SkipListBasic, BatchGetWithHeavyDuplicates) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(11);
  const auto pairs = test::make_sorted_pairs(64, rng);
  list.build(pairs);

  // Adversarial: every query hits the same key.
  std::vector<Key> keys(1000, pairs[3].first);
  const auto results = list.batch_get(keys);
  for (const auto& r : results) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, pairs[3].second);
  }
}

TEST_P(SkipListBasic, BatchUpdateThenGet) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(13);
  const auto pairs = test::make_sorted_pairs(200, rng);
  list.build(pairs);

  std::vector<std::pair<Key, Value>> updates;
  for (u64 i = 0; i < pairs.size(); i += 2) updates.push_back({pairs[i].first, 777 + i});
  updates.push_back({static_cast<Key>(3'500'000'000), 1});  // miss

  const auto found = list.batch_update(updates);
  for (u64 i = 0; i + 1 < updates.size(); ++i) EXPECT_TRUE(found[i]);
  EXPECT_FALSE(found.back());

  std::vector<Key> keys;
  for (const auto& [k, v] : updates) keys.push_back(k);
  const auto results = list.batch_get(keys);
  for (u64 i = 0; i + 1 < updates.size(); ++i) {
    EXPECT_TRUE(results[i].found);
    EXPECT_EQ(results[i].value, updates[i].second);
  }
  list.check_invariants();
}

TEST_P(SkipListBasic, GetBatchCostsOneRoundTrip) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(17);
  const auto pairs = test::make_sorted_pairs(400, rng);
  list.build(pairs);

  std::vector<Key> keys;
  for (const auto& [k, v] : pairs) keys.push_back(k);
  const auto metrics = sim::measure(machine, [&] { (void)list.batch_get(keys); });
  EXPECT_EQ(metrics.machine.rounds, 1u);  // request and reply share a round
  EXPECT_GT(metrics.machine.messages, 0u);
  EXPECT_GT(metrics.cpu_work, 0u);
}

TEST_P(SkipListBasic, SpaceAccountingTheorem31) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(19);
  const u64 n = 2000;
  const auto pairs = test::make_sorted_pairs(n, rng);
  list.build(pairs);

  const u32 p = GetParam();
  u64 max_module = 0;
  for (ModuleId m = 0; m < p; ++m) max_module = std::max(max_module, list.module_space_words(m));
  // Θ(n/P) per module whp; allow a generous constant.
  EXPECT_LT(max_module, 400 * (n / p + 1) + 4000) << "module space not O(n/P)";
  EXPECT_GT(list.total_words(), n);  // at least the data itself
}

INSTANTIATE_TEST_SUITE_P(Modules, SkipListBasic, ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u));

}  // namespace
}  // namespace pim::core
