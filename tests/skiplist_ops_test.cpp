// Differential tests of the batch operations (§4.2–§4.4, §5) against a
// sequential reference model, across module counts and key distributions,
// including the paper's adversarial cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pim_skiplist.hpp"
#include "test_util.hpp"

namespace pim::core {
namespace {

using test::RefModel;

class SkipListOps : public ::testing::TestWithParam<u32> {};

TEST_P(SkipListOps, BatchSuccessorMatchesReference) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(23);
  const auto pairs = test::make_sorted_pairs(500, rng);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  auto keys = test::random_keys(600, rng, -100, 1'100'000'000);
  // Exact hits too.
  for (u64 i = 0; i < 100; ++i) keys.push_back(pairs[rng.below(pairs.size())].first);

  const auto succ = list.batch_successor(keys);
  const auto pred = list.batch_predecessor(keys);
  ASSERT_EQ(succ.size(), keys.size());
  for (u64 i = 0; i < keys.size(); ++i) {
    Key expect;
    const bool has_succ = ref.successor(keys[i], &expect);
    EXPECT_EQ(succ[i].found, has_succ) << "succ(" << keys[i] << ")";
    if (has_succ) {
      EXPECT_EQ(succ[i].key, expect) << "succ(" << keys[i] << ")";
    }
    const bool has_pred = ref.predecessor(keys[i], &expect);
    EXPECT_EQ(pred[i].found, has_pred) << "pred(" << keys[i] << ")";
    if (has_pred) {
      EXPECT_EQ(pred[i].key, expect) << "pred(" << keys[i] << ")";
    }
  }
  list.check_invariants();
}

TEST_P(SkipListOps, AdversarialSameSuccessorBatch) {
  // §4.2's adversarial case: many distinct keys, all with the same
  // successor — must still return correct answers (and stay balanced,
  // which bench_fig3 measures).
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(29);
  // Keys spaced far apart; queries all fall in one gap.
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 100; ++k) pairs.push_back({k * 1'000'000, k});
  list.build(pairs);

  std::vector<Key> keys;
  for (u64 i = 0; i < 800; ++i) keys.push_back(41'000'000 + 1 + static_cast<Key>(i));
  const auto succ = list.batch_successor(keys);
  for (const auto& r : succ) {
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.key, 42'000'000);
  }
}

TEST_P(SkipListOps, NaiveSuccessorAgreesWithBalanced) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(31);
  const auto pairs = test::make_sorted_pairs(300, rng);
  list.build(pairs);

  const auto keys = test::random_keys(300, rng);
  const auto balanced = list.batch_successor(keys);
  const auto naive = list.batch_successor_naive(keys);
  for (u64 i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(naive[i].found, balanced[i].found);
    if (naive[i].found) {
      EXPECT_EQ(naive[i].key, balanced[i].key);
    }
  }
}

TEST_P(SkipListOps, BatchUpsertInsertsAndUpdates) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(37);
  const auto pairs = test::make_sorted_pairs(200, rng);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<std::pair<Key, Value>> batch;
  for (u64 i = 0; i < 100; ++i) batch.push_back({pairs[i].first, 9000 + i});       // updates
  for (u64 i = 0; i < 300; ++i) batch.push_back({rng.range(0, 2'000'000'000), i});  // inserts

  list.batch_upsert(batch);
  // First occurrence wins for duplicates; replay in order skipping repeats.
  {
    std::set<Key> seen;
    for (const auto& [k, v] : batch) {
      if (seen.insert(k).second) ref.upsert(k, v);
    }
  }
  EXPECT_EQ(list.size(), ref.size());
  list.check_invariants();

  std::vector<Key> keys;
  for (const auto& [k, v] : ref.map()) keys.push_back(k);
  const auto results = list.batch_get(keys);
  u64 i = 0;
  for (const auto& [k, v] : ref.map()) {
    ASSERT_TRUE(results[i].found) << "missing key " << k;
    EXPECT_EQ(results[i].value, v) << "wrong value for " << k;
    ++i;
  }
}

TEST_P(SkipListOps, BatchUpsertConsecutiveRuns) {
  // Fig. 4's hard case: many new keys that are mutual neighbors, so
  // Algorithm 1 must chain new nodes to each other at every level.
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  std::vector<std::pair<Key, Value>> initial = {{0, 0}, {1'000'000, 1}};
  list.build(initial);

  std::vector<std::pair<Key, Value>> batch;
  for (Key k = 100; k < 1100; ++k) batch.push_back({k, static_cast<Value>(k)});
  list.batch_upsert(batch);
  EXPECT_EQ(list.size(), 1002u);
  list.check_invariants();

  std::vector<Key> keys;
  for (const auto& [k, v] : batch) keys.push_back(k);
  const auto results = list.batch_get(keys);
  for (u64 i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(results[i].found);
    EXPECT_EQ(results[i].value, static_cast<Value>(keys[i]));
  }
}

TEST_P(SkipListOps, BatchDeleteScattered) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(41);
  const auto pairs = test::make_sorted_pairs(400, rng);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<Key> doomed;
  for (u64 i = 0; i < pairs.size(); i += 3) doomed.push_back(pairs[i].first);
  doomed.push_back(static_cast<Key>(3'000'000'000));  // miss
  doomed.push_back(doomed.front());                   // duplicate

  const auto erased = list.batch_delete(doomed);
  for (u64 i = 0; i + 2 < doomed.size(); ++i) EXPECT_TRUE(erased[i]);
  EXPECT_FALSE(erased[doomed.size() - 2]);
  EXPECT_TRUE(erased.back());  // duplicate of an erased key reports erased
  for (u64 i = 0; i + 2 < doomed.size(); ++i) ref.erase(doomed[i]);

  EXPECT_EQ(list.size(), ref.size());
  list.check_invariants();

  std::vector<Key> all;
  for (const auto& [k, v] : pairs) all.push_back(k);
  const auto results = list.batch_get(all);
  for (u64 i = 0; i < all.size(); ++i) {
    Value v;
    EXPECT_EQ(results[i].found, ref.get(all[i], &v)) << "key " << all[i];
  }
}

TEST_P(SkipListOps, BatchDeleteConsecutiveRun) {
  // Fig. 4 / §4.4: delete a long consecutive run — list contraction must
  // splice the whole run at every level.
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 1000; ++k) pairs.push_back({k, static_cast<Value>(k)});
  list.build(pairs);

  std::vector<Key> doomed;
  for (Key k = 100; k < 900; ++k) doomed.push_back(k);
  const auto erased = list.batch_delete(doomed);
  for (const auto e : erased) EXPECT_TRUE(e);
  EXPECT_EQ(list.size(), 200u);
  list.check_invariants();

  const auto succ = list.batch_successor(std::vector<Key>{99, 100, 500, 899});
  EXPECT_EQ(succ[0].key, 99);
  EXPECT_EQ(succ[1].key, 900);
  EXPECT_EQ(succ[2].key, 900);
  EXPECT_EQ(succ[3].key, 900);
}

TEST_P(SkipListOps, DeleteEverything) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(43);
  const auto pairs = test::make_sorted_pairs(300, rng);
  list.build(pairs);

  std::vector<Key> doomed;
  for (const auto& [k, v] : pairs) doomed.push_back(k);
  const auto erased = list.batch_delete(doomed);
  for (const auto e : erased) EXPECT_TRUE(e);
  EXPECT_EQ(list.size(), 0u);
  list.check_invariants();

  // The structure stays usable.
  std::vector<std::pair<Key, Value>> batch = {{5, 50}, {6, 60}};
  list.batch_upsert(batch);
  EXPECT_EQ(list.size(), 2u);
  list.check_invariants();
}

TEST_P(SkipListOps, MixedWorkloadManyBatches) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(47);

  for (int round = 0; round < 8; ++round) {
    std::vector<std::pair<Key, Value>> ups;
    for (int i = 0; i < 120; ++i) ups.push_back({rng.range(0, 50'000), rng()});
    list.batch_upsert(ups);
    {
      std::set<Key> seen;
      for (const auto& [k, v] : ups) {
        if (seen.insert(k).second) ref.upsert(k, v);
      }
    }

    std::vector<Key> dels;
    for (int i = 0; i < 40; ++i) dels.push_back(rng.range(0, 50'000));
    const auto erased = list.batch_delete(dels);
    {
      std::set<Key> seen;
      u64 j = 0;
      for (const Key k : dels) {
        const bool expect = ref.map().count(k) > 0 || (seen.count(k) > 0);
        EXPECT_EQ(static_cast<bool>(erased[j]), expect) << "delete " << k;
        if (ref.erase(k)) seen.insert(k);
        ++j;
      }
    }

    EXPECT_EQ(list.size(), ref.size());
    list.check_invariants();

    const auto keys = test::random_keys(100, rng, 0, 50'000);
    const auto succ = list.batch_successor(keys);
    for (u64 i = 0; i < keys.size(); ++i) {
      Key expect;
      const bool has = ref.successor(keys[i], &expect);
      ASSERT_EQ(succ[i].found, has) << "succ(" << keys[i] << ") in round " << round;
      if (has) {
        EXPECT_EQ(succ[i].key, expect);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modules, SkipListOps, ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace pim::core
