// Range operation tests (§5): broadcast-based (Thm 5.1) and tree-based
// batched (Thm 5.2), differential against the reference model.
#include <gtest/gtest.h>

#include "core/pim_skiplist.hpp"
#include "sim/measure.hpp"
#include "test_util.hpp"

namespace pim::core {
namespace {

using test::RefModel;

class SkipListRange : public ::testing::TestWithParam<u32> {};

TEST_P(SkipListRange, BroadcastCountSum) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(53);
  const auto pairs = test::make_sorted_pairs(600, rng, 0, 100'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  for (int t = 0; t < 20; ++t) {
    Key lo = rng.range(-10, 100'010);
    Key hi = rng.range(lo, 100'020);
    const auto agg = list.range_count_broadcast(lo, hi);
    const auto [count, sum] = ref.range_count_sum(lo, hi);
    EXPECT_EQ(agg.count, count) << "[" << lo << "," << hi << "]";
    EXPECT_EQ(agg.sum, sum);
  }
  // Full range and empty range.
  const auto all = list.range_count_broadcast(kMinKey + 1, kMaxKey - 1);
  EXPECT_EQ(all.count, pairs.size());
  const auto none = list.range_count_broadcast(200'000, 300'000);
  EXPECT_EQ(none.count, 0u);
}

TEST_P(SkipListRange, BroadcastIsOneRoundAndHEqualsOne) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  rnd::Xoshiro256ss rng(59);
  const auto pairs = test::make_sorted_pairs(500, rng, 0, 100'000);
  list.build(pairs);

  const auto metrics =
      sim::measure(machine, [&] { (void)list.range_count_broadcast(10'000, 20'000); });
  EXPECT_EQ(metrics.machine.rounds, 1u);
  // h = 1 broadcast in + 1 partial reply out per module.
  EXPECT_EQ(metrics.machine.io_time, 2u);
}

TEST_P(SkipListRange, BroadcastFetchAdd) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(61);
  const auto pairs = test::make_sorted_pairs(300, rng, 0, 50'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  const Key lo = 10'000, hi = 35'000;
  const auto [count, old_sum] = ref.range_count_sum(lo, hi);
  const auto agg = list.range_fetch_add_broadcast(lo, hi, 5);
  EXPECT_EQ(agg.count, count);
  EXPECT_EQ(agg.sum, old_sum);

  // Values actually changed.
  const auto after = list.range_count_broadcast(lo, hi);
  EXPECT_EQ(after.sum, old_sum + 5 * count);
  list.check_invariants();
}

TEST_P(SkipListRange, BroadcastCollect) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(67);
  const auto pairs = test::make_sorted_pairs(400, rng, 0, 80'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  const Key lo = 20'000, hi = 60'000;
  const auto got = list.range_collect_broadcast(lo, hi);
  std::vector<std::pair<Key, Value>> expect;
  for (const auto& [k, v] : ref.map()) {
    if (k >= lo && k <= hi) expect.push_back({k, v});
  }
  ASSERT_EQ(got.size(), expect.size());
  for (u64 i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, expect[i].first);
    EXPECT_EQ(got[i].second, expect[i].second);
  }
}

TEST_P(SkipListRange, TreeBatchedAggregate) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(71);
  const auto pairs = test::make_sorted_pairs(800, rng, 0, 200'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<PimSkipList::RangeQuery> queries;
  for (int t = 0; t < 60; ++t) {
    const Key lo = rng.range(0, 200'000);
    const Key hi = rng.range(lo, std::min<Key>(lo + 20'000, 210'000));
    queries.push_back({lo, hi});
  }
  const auto got = list.batch_range_aggregate(queries);
  ASSERT_EQ(got.size(), queries.size());
  for (u64 i = 0; i < queries.size(); ++i) {
    const auto [count, sum] = ref.range_count_sum(queries[i].lo, queries[i].hi);
    EXPECT_EQ(got[i].count, count) << "[" << queries[i].lo << "," << queries[i].hi << "]";
    EXPECT_EQ(got[i].sum, sum);
  }
}

TEST_P(SkipListRange, TreeBatchedOverlappingAndNested) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(73);
  const auto pairs = test::make_sorted_pairs(500, rng, 0, 100'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<PimSkipList::RangeQuery> queries = {
      {0, 100'000},       // everything
      {0, 100'000},       // duplicate of everything
      {10'000, 90'000},   // nested
      {10'000, 10'000},   // point range
      {50'000, 50'001},   // tiny
      {99'999, 100'000},  // edge
      {0, 1},             // edge
  };
  const auto got = list.batch_range_aggregate(queries);
  for (u64 i = 0; i < queries.size(); ++i) {
    const auto [count, sum] = ref.range_count_sum(queries[i].lo, queries[i].hi);
    EXPECT_EQ(got[i].count, count) << "query " << i;
    EXPECT_EQ(got[i].sum, sum) << "query " << i;
  }
}

TEST_P(SkipListRange, ExpandEngineMatchesWalkEngine) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(307);
  const auto pairs = test::make_sorted_pairs(900, rng, 0, 300'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<PimSkipList::RangeQuery> queries;
  for (int t = 0; t < 50; ++t) {
    const Key lo = rng.range(0, 300'000);
    const Key hi = rng.range(lo, std::min<Key>(lo + 40'000, 310'000));
    queries.push_back({lo, hi});
  }
  queries.push_back({0, 300'000});  // one huge range
  const auto walk = list.batch_range_aggregate(queries);
  const auto expand = list.batch_range_aggregate_expand(queries);
  ASSERT_EQ(walk.size(), expand.size());
  for (u64 i = 0; i < queries.size(); ++i) {
    const auto [count, sum] = ref.range_count_sum(queries[i].lo, queries[i].hi);
    EXPECT_EQ(expand[i].count, count) << "expand [" << queries[i].lo << "," << queries[i].hi << "]";
    EXPECT_EQ(expand[i].sum, sum);
    EXPECT_EQ(walk[i].count, expand[i].count);
    EXPECT_EQ(walk[i].sum, expand[i].sum);
  }
}

TEST_P(SkipListRange, ExpandEngineEdgeCases) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 200; ++k) pairs.push_back({k * 5, 1});
  list.build(pairs);

  std::vector<PimSkipList::RangeQuery> queries = {
      {0, 0},                    // point hit at the minimum
      {1, 4},                    // between keys (empty)
      {995, 995},                // point hit at the maximum
      {996, 50'000},             // beyond the maximum (empty)
      {kMinKey + 1, kMaxKey - 1},  // everything
      {0, 995},                  // exact span
  };
  const auto got = list.batch_range_aggregate_expand(queries);
  EXPECT_EQ(got[0].count, 1u);
  EXPECT_EQ(got[1].count, 0u);
  EXPECT_EQ(got[2].count, 1u);
  EXPECT_EQ(got[3].count, 0u);
  EXPECT_EQ(got[4].count, 200u);
  EXPECT_EQ(got[5].count, 200u);
}

TEST_P(SkipListRange, ExpandEngineAfterMutations) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(311);
  const auto pairs = test::make_sorted_pairs(300, rng, 0, 60'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<std::pair<Key, Value>> ups;
  for (int i = 0; i < 150; ++i) ups.push_back({rng.range(0, 60'000), 3});
  list.batch_upsert(ups);
  {
    std::set<Key> seen;
    for (const auto& [k, v] : ups) {
      if (seen.insert(k).second) ref.upsert(k, v);
    }
  }
  std::vector<Key> dels;
  for (int i = 0; i < 80; ++i) dels.push_back(rng.range(0, 60'000));
  list.batch_delete(dels);
  for (const Key k : dels) ref.erase(k);

  std::vector<PimSkipList::RangeQuery> queries;
  for (int t = 0; t < 25; ++t) {
    const Key lo = rng.range(0, 60'000);
    const Key hi = rng.range(lo, 60'000);
    queries.push_back({lo, hi});
  }
  const auto got = list.batch_range_aggregate_expand(queries);
  for (u64 i = 0; i < queries.size(); ++i) {
    const auto [count, sum] = ref.range_count_sum(queries[i].lo, queries[i].hi);
    EXPECT_EQ(got[i].count, count);
    EXPECT_EQ(got[i].sum, sum);
  }
}

TEST_P(SkipListRange, TreeBatchedHugeRangeFallsBackToBroadcast) {
  // One subrange far larger than the walk budget exercises the §5.1
  // fallback path.
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 5000; ++k) pairs.push_back({k, 1});
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  std::vector<PimSkipList::RangeQuery> queries = {{0, 4999}, {100, 200}};
  const auto got = list.batch_range_aggregate(queries);
  EXPECT_EQ(got[0].count, 5000u);
  EXPECT_EQ(got[0].sum, 5000u);
  EXPECT_EQ(got[1].count, 101u);
}

TEST_P(SkipListRange, RangeAfterMutationBatches) {
  sim::Machine machine(GetParam());
  PimSkipList list(machine);
  RefModel ref;
  rnd::Xoshiro256ss rng(79);
  const auto pairs = test::make_sorted_pairs(400, rng, 0, 50'000);
  list.build(pairs);
  for (const auto& [k, v] : pairs) ref.upsert(k, v);

  // Mutate, then range-query: exercises local leaf list maintenance.
  std::vector<std::pair<Key, Value>> ups;
  for (int i = 0; i < 200; ++i) ups.push_back({rng.range(0, 50'000), 7});
  list.batch_upsert(ups);
  {
    std::set<Key> seen;
    for (const auto& [k, v] : ups) {
      if (seen.insert(k).second) ref.upsert(k, v);
    }
  }
  std::vector<Key> dels;
  for (int i = 0; i < 100; ++i) dels.push_back(rng.range(0, 50'000));
  list.batch_delete(dels);
  for (const Key k : dels) ref.erase(k);

  for (int t = 0; t < 10; ++t) {
    const Key lo = rng.range(0, 50'000);
    const Key hi = rng.range(lo, 50'000);
    const auto agg = list.range_count_broadcast(lo, hi);
    const auto [count, sum] = ref.range_count_sum(lo, hi);
    EXPECT_EQ(agg.count, count) << "[" << lo << "," << hi << "]";
    EXPECT_EQ(agg.sum, sum);
  }
  list.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Modules, SkipListRange, ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace pim::core
