// Randomized long-haul stress: many seeds, mixed batch schedules, full
// differential checking plus structural invariants after every batch.
#include <gtest/gtest.h>

#include "core/pim_skiplist.hpp"
#include "reference_model.hpp"
#include "test_util.hpp"

namespace pim::core {
namespace {

// Differential oracle: the shared batch-semantics reference model
// (tests/reference_model.hpp), also used by the chaos/integrity tests.
using test::Ref;

class SkipListStress : public ::testing::TestWithParam<u64> {};

TEST_P(SkipListStress, RandomScheduleDifferential) {
  const u64 seed = GetParam();
  rnd::Xoshiro256ss rng(seed);
  const u32 p = 1u << rng.below(6);  // P in {1..32}
  sim::Machine machine(p);
  PimSkipList::Options opts;
  opts.seed = rng();
  PimSkipList list(machine, opts);

  // Start from a random base.
  const auto base = test::make_sorted_pairs(rng.below(400), rng, 0, 20'000);
  list.build(base);
  Ref ref(base.begin(), base.end());

  for (int step = 0; step < 12; ++step) {
    switch (rng.below(6)) {
      case 0: {  // upsert
        std::vector<std::pair<Key, Value>> ops;
        const u64 b = 1 + rng.below(200);
        for (u64 i = 0; i < b; ++i) ops.push_back({rng.range(0, 20'000), rng()});
        list.batch_upsert(ops);
        test::ref_upsert(ref, ops);
        break;
      }
      case 1: {  // delete
        std::vector<Key> keys;
        const u64 b = 1 + rng.below(150);
        for (u64 i = 0; i < b; ++i) keys.push_back(rng.range(0, 20'000));
        const auto erased = list.batch_delete(keys);
        const auto expect = test::ref_delete(ref, keys);
        for (u64 i = 0; i < keys.size(); ++i) {
          ASSERT_EQ(erased[i], expect[i])
              << "seed " << seed << " step " << step << " key " << keys[i];
        }
        break;
      }
      case 2: {  // get
        const auto keys = test::random_keys(1 + rng.below(200), rng, 0, 20'000);
        const auto results = list.batch_get(keys);
        for (u64 i = 0; i < keys.size(); ++i) {
          const auto it = ref.find(keys[i]);
          ASSERT_EQ(results[i].found, it != ref.end())
              << "seed " << seed << " key " << keys[i];
          if (it != ref.end()) {
            ASSERT_EQ(results[i].value, it->second);
          }
        }
        break;
      }
      case 3: {  // successor + predecessor
        const auto keys = test::random_keys(1 + rng.below(200), rng, -10, 20'010);
        const auto succ = list.batch_successor(keys);
        const auto pred = list.batch_predecessor(keys);
        for (u64 i = 0; i < keys.size(); ++i) {
          const auto it = ref.lower_bound(keys[i]);
          ASSERT_EQ(succ[i].found, it != ref.end()) << keys[i];
          if (it != ref.end()) {
            ASSERT_EQ(succ[i].key, it->first);
          }
          const auto jt = ref.upper_bound(keys[i]);
          ASSERT_EQ(pred[i].found, jt != ref.begin()) << keys[i];
          if (jt != ref.begin()) {
            ASSERT_EQ(pred[i].key, std::prev(jt)->first);
          }
        }
        break;
      }
      case 4: {  // broadcast range + fetch-add
        const Key lo = rng.range(0, 20'000);
        const Key hi = rng.range(lo, 20'000);
        if (rng.coin()) {
          const auto agg = list.range_count_broadcast(lo, hi);
          const auto [count, sum] = test::ref_range(ref, lo, hi);
          ASSERT_EQ(agg.count, count);
          ASSERT_EQ(agg.sum, sum);
        } else {
          const auto agg = list.range_fetch_add_broadcast(lo, hi, 3);
          const auto [count, sum] = test::ref_fetch_add(ref, lo, hi, 3);
          ASSERT_EQ(agg.count, count);
          ASSERT_EQ(agg.sum, sum);
        }
        break;
      }
      default: {  // batched tree ranges (both engines)
        std::vector<PimSkipList::RangeQuery> queries;
        const u64 b = 1 + rng.below(30);
        for (u64 i = 0; i < b; ++i) {
          const Key lo = rng.range(0, 20'000);
          queries.push_back({lo, rng.range(lo, 20'000)});
        }
        const auto walk = list.batch_range_aggregate(queries);
        const auto expand = list.batch_range_aggregate_expand(queries);
        for (u64 i = 0; i < queries.size(); ++i) {
          const auto [count, sum] = test::ref_range(ref, queries[i].lo, queries[i].hi);
          ASSERT_EQ(walk[i].count, count) << "seed " << seed;
          ASSERT_EQ(expand[i].count, count) << "seed " << seed;
          ASSERT_EQ(walk[i].sum, sum);
          ASSERT_EQ(expand[i].sum, sum);
        }
        break;
      }
    }
    ASSERT_EQ(list.size(), ref.size()) << "seed " << seed << " step " << step;
    list.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListStress,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

TEST(SkipListEdge, SingleModuleMachine) {
  sim::Machine machine(1);
  PimSkipList list(machine);
  list.batch_upsert(std::vector<std::pair<Key, Value>>{{5, 50}, {3, 30}, {9, 90}});
  EXPECT_EQ(list.size(), 3u);
  const auto got = list.batch_get(std::vector<Key>{3, 5, 9, 7});
  EXPECT_TRUE(got[0].found && got[1].found && got[2].found);
  EXPECT_FALSE(got[3].found);
  list.check_invariants();
}

TEST(SkipListEdge, EmptyBatchesAreNoops) {
  sim::Machine machine(4);
  PimSkipList list(machine);
  EXPECT_TRUE(list.batch_get({}).empty());
  EXPECT_TRUE(list.batch_successor({}).empty());
  EXPECT_TRUE(list.batch_delete({}).empty());
  list.batch_upsert({});
  EXPECT_TRUE(list.batch_range_aggregate({}).empty());
  EXPECT_TRUE(list.batch_range_aggregate_expand({}).empty());
  EXPECT_EQ(list.size(), 0u);
  list.check_invariants();
}

TEST(SkipListEdge, OperationsOnEmptyStructure) {
  sim::Machine machine(8);
  PimSkipList list(machine);
  const auto got = list.batch_get(std::vector<Key>{1, 2, 3});
  for (const auto& r : got) EXPECT_FALSE(r.found);
  const auto succ = list.batch_successor(std::vector<Key>{0});
  EXPECT_FALSE(succ[0].found);
  const auto pred = list.batch_predecessor(std::vector<Key>{0});
  EXPECT_FALSE(pred[0].found);
  const auto erased = list.batch_delete(std::vector<Key>{5});
  EXPECT_FALSE(erased[0]);
  const auto agg = list.range_count_broadcast(0, 1'000'000);
  EXPECT_EQ(agg.count, 0u);
}

TEST(SkipListEdge, ExtremeKeys) {
  sim::Machine machine(4);
  PimSkipList list(machine);
  const Key lo = kMinKey + 1;
  const Key hi = kMaxKey - 1;
  list.batch_upsert(std::vector<std::pair<Key, Value>>{{lo, 1}, {0, 2}, {hi, 3}});
  const auto got = list.batch_get(std::vector<Key>{lo, 0, hi});
  EXPECT_TRUE(got[0].found && got[1].found && got[2].found);
  const auto succ = list.batch_successor(std::vector<Key>{kMinKey + 1});
  EXPECT_EQ(succ[0].key, lo);
  const auto pred = list.batch_predecessor(std::vector<Key>{kMaxKey - 1});
  EXPECT_EQ(pred[0].key, hi);
  list.check_invariants();
}

TEST(SkipListEdge, ReservedKeysRejected) {
  sim::Machine machine(4);
  PimSkipList list(machine);
  EXPECT_THROW(list.batch_upsert(std::vector<std::pair<Key, Value>>{{kMinKey, 1}}),
               std::logic_error);
  EXPECT_THROW(list.batch_upsert(std::vector<std::pair<Key, Value>>{{kMaxKey, 1}}),
               std::logic_error);
}

TEST(SkipListEdge, UpsertDeleteSameKeyAcrossBatches) {
  sim::Machine machine(8);
  PimSkipList list(machine);
  for (int round = 0; round < 10; ++round) {
    list.batch_upsert(std::vector<std::pair<Key, Value>>{{42, static_cast<Value>(round)}});
    const auto got = list.batch_get(std::vector<Key>{42});
    ASSERT_TRUE(got[0].found);
    ASSERT_EQ(got[0].value, static_cast<Value>(round));
    const auto erased = list.batch_delete(std::vector<Key>{42});
    ASSERT_TRUE(erased[0]);
    ASSERT_EQ(list.size(), 0u);
    list.check_invariants();
  }
}

TEST(SkipListEdge, LargeBatchOnTinyStructure) {
  sim::Machine machine(16);
  PimSkipList list(machine);
  list.batch_upsert(std::vector<std::pair<Key, Value>>{{100, 1}});
  // 5000 successor queries against a single key.
  std::vector<Key> keys(5000);
  for (u64 i = 0; i < keys.size(); ++i) keys[i] = static_cast<Key>(i % 200);
  const auto succ = list.batch_successor(keys);
  for (u64 i = 0; i < keys.size(); ++i) {
    if (keys[i] <= 100) {
      ASSERT_TRUE(succ[i].found);
      ASSERT_EQ(succ[i].key, 100);
    } else {
      ASSERT_FALSE(succ[i].found);
    }
  }
}

}  // namespace
}  // namespace pim::core
