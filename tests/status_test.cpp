// Status code round-trip: every code in [0, kStatusCodeCount) must carry
// a distinct human-readable name. A code added without extending
// status_code_name would fall through to "UNKNOWN" and fail here, so new
// degraded-mode codes (kDeadlineExceeded, kResourceExhausted) can never
// silently lose their identity in logs or error messages.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/status.hpp"

namespace pim {
namespace {

TEST(Status, EveryCodeHasADistinctName) {
  std::set<std::string> names;
  for (u32 c = 0; c < static_cast<u32>(StatusCode::kStatusCodeCount); ++c) {
    const std::string name = status_code_name(static_cast<StatusCode>(c));
    EXPECT_NE(name, "UNKNOWN") << "code " << c << " has no name";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.count("OK"), 1u);
  EXPECT_EQ(names.count("DEADLINE_EXCEEDED"), 1u);
  EXPECT_EQ(names.count("RESOURCE_EXHAUSTED"), 1u);
  // Shard-tier codes (DESIGN.md §5.10–5.11) round-trip like the rest.
  EXPECT_EQ(names.count("SHARD_DOWN"), 1u);
  EXPECT_EQ(names.count("MIGRATION_IN_PROGRESS"), 1u);
  EXPECT_EQ(names.count("NO_QUORUM"), 1u);
  EXPECT_EQ(names.count("FENCED_EPOCH"), 1u);
  // The sentinel itself is not a code.
  EXPECT_STREQ(status_code_name(StatusCode::kStatusCodeCount), "UNKNOWN");
}

TEST(Status, ShardCodesCarryTheirIdentityThroughStatusError) {
  const Status down(StatusCode::kShardDown, "shard 2 is down");
  try {
    throw StatusError(down);
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kShardDown);
    EXPECT_NE(std::string(e.what()).find("SHARD_DOWN"), std::string::npos);
  }
  const Status busy(StatusCode::kMigrationInProgress, "one at a time");
  EXPECT_EQ(busy.to_string(), "MIGRATION_IN_PROGRESS: one at a time");

  // The replication tier's refusal code (DESIGN.md §5.11): distinct from
  // kShardDown (the group still serves reads) and preserved end to end.
  const Status quorum(StatusCode::kNoQuorum, "1 of 2 replicas acked");
  EXPECT_EQ(quorum.to_string(), "NO_QUORUM: 1 of 2 replicas acked");
  try {
    throw StatusError(quorum);
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kNoQuorum);
    EXPECT_EQ(e.status().message(), "1 of 2 replicas acked");
    EXPECT_NE(std::string(e.what()).find("NO_QUORUM"), std::string::npos);
  }

  // The fencing refusal (DESIGN.md §5.12): a result produced under a
  // configuration that changed before it was applied. Distinct from
  // kNoQuorum (the group was reachable; the epoch moved) and preserved
  // through per-key Status reassembly like every other shard code.
  const Status fenced(StatusCode::kFencedEpoch,
                      "group 3 configuration changed (epoch 4 -> 5)");
  EXPECT_EQ(fenced.to_string(),
            "FENCED_EPOCH: group 3 configuration changed (epoch 4 -> 5)");
  try {
    throw StatusError(fenced);
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kFencedEpoch);
    EXPECT_EQ(e.status().message(),
              "group 3 configuration changed (epoch 4 -> 5)");
    EXPECT_NE(std::string(e.what()).find("FENCED_EPOCH"), std::string::npos);
  }
}

TEST(Status, DefaultIsOkAndToStringCarriesCodeName) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_TRUE(ok.message().empty());

  const Status deadline(StatusCode::kDeadlineExceeded, "budget spent");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.to_string(), "DEADLINE_EXCEEDED: budget spent");
}

TEST(Status, StatusErrorRoundTripsTheStatus) {
  const Status shed(StatusCode::kResourceExhausted, "queue full");
  try {
    throw StatusError(shed);
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(e.status().message(), "queue full");
    EXPECT_NE(std::string(e.what()).find("RESOURCE_EXHAUSTED"), std::string::npos);
  }
}

}  // namespace
}  // namespace pim
