// TaskRing unit tests: the flat power-of-two FIFO under the simulator's
// delivered-task queues. Exercised directly (not through Machine) for
// the three behaviors the engine depends on: index wrap-around at
// capacity, order-preserving compaction with interleaved tombstones
// (the hedging prepass), and growth while the contents are split across
// the wrap point.
#include <gtest/gtest.h>

#include <vector>

#include "sim/task_ring.hpp"

namespace pim::sim {
namespace {

Task tagged(u64 id) {
  Task t;
  t.nargs = 1;
  t.args[0] = id;
  return t;
}

u64 tag(const Task& t) { return t.args[0]; }

TEST(TaskRing, FifoOrderAcrossWrapAround) {
  TaskRing ring;
  EXPECT_TRUE(ring.empty());

  // Fill to the initial power-of-two capacity (8), drain half, refill:
  // head and tail both wrap while size stays below capacity — no grow.
  for (u64 i = 0; i < 8; ++i) ring.push_back(tagged(i));
  EXPECT_EQ(ring.size(), 8u);
  for (u64 i = 0; i < 5; ++i) {
    EXPECT_EQ(tag(ring.front()), i);
    ring.pop_front();
  }
  for (u64 i = 8; i < 13; ++i) ring.push_back(tagged(i));  // wraps physically
  EXPECT_EQ(ring.size(), 8u);

  // at() walks front-to-back across the wrap point.
  for (u64 i = 0; i < ring.size(); ++i) EXPECT_EQ(tag(ring.at(i)), 5 + i);
  // Drain fully in FIFO order.
  for (u64 i = 5; i < 13; ++i) {
    EXPECT_EQ(tag(ring.front()), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(TaskRing, CompactionPreservesOrderWithInterleavedTombstones) {
  TaskRing ring;
  // Offset the head so the compaction also runs across the wrap point.
  for (u64 i = 0; i < 6; ++i) ring.push_back(tagged(999));
  for (u64 i = 0; i < 6; ++i) ring.pop_front();
  for (u64 i = 0; i < 12; ++i) ring.push_back(tagged(i));

  // The hedging-prepass idiom: walk with at(), copy keepers forward,
  // truncate. Tombstone every task with an odd tag.
  u64 kept = 0;
  for (u64 i = 0; i < ring.size(); ++i) {
    if (tag(ring.at(i)) % 2 == 1) continue;  // tombstone
    ring.at(kept++) = ring.at(i);
  }
  ring.truncate(kept);

  ASSERT_EQ(ring.size(), 6u);
  for (u64 i = 0; i < ring.size(); ++i) EXPECT_EQ(tag(ring.at(i)), 2 * i);
  // The survivors still pop in order.
  EXPECT_EQ(tag(ring.front()), 0u);
  ring.pop_front();
  EXPECT_EQ(tag(ring.front()), 2u);

  // Compacting everything away empties the ring but keeps it usable.
  ring.truncate(0);
  EXPECT_TRUE(ring.empty());
  ring.push_back(tagged(77));
  EXPECT_EQ(tag(ring.front()), 77u);
}

TEST(TaskRing, GrowsWhileNonContiguous) {
  TaskRing ring;
  // Reach capacity 8, then shift the head so the live window straddles
  // the physical end of the buffer.
  for (u64 i = 0; i < 8; ++i) ring.push_back(tagged(i));
  for (u64 i = 0; i < 6; ++i) ring.pop_front();          // head = 6
  for (u64 i = 8; i < 14; ++i) ring.push_back(tagged(i));  // tail wrapped
  EXPECT_EQ(ring.size(), 8u);

  // The next push grows 8 -> 16 and must relinearize the wrapped window.
  ring.push_back(tagged(14));
  EXPECT_EQ(ring.size(), 9u);
  for (u64 i = 0; i < ring.size(); ++i) EXPECT_EQ(tag(ring.at(i)), 6 + i);

  // Keep growing through another doubling; order still holds.
  for (u64 i = 15; i < 40; ++i) ring.push_back(tagged(i));
  EXPECT_EQ(ring.size(), 34u);
  for (u64 i = 6; i < 40; ++i) {
    EXPECT_EQ(tag(ring.front()), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());

  // clear() keeps capacity and resets indices.
  for (u64 i = 0; i < 3; ++i) ring.push_back(tagged(i));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(tagged(5));
  EXPECT_EQ(tag(ring.front()), 5u);
}

}  // namespace
}  // namespace pim::sim
