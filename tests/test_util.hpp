// Shared test helpers: reference model (std::map) and key generators.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "random/rng.hpp"

namespace pim::test {

/// Sequential reference model for differential testing.
class RefModel {
 public:
  void upsert(Key k, Value v) { map_[k] = v; }
  bool erase(Key k) { return map_.erase(k) > 0; }
  bool get(Key k, Value* v) const {
    auto it = map_.find(k);
    if (it == map_.end()) return false;
    *v = it->second;
    return true;
  }
  bool successor(Key k, Key* out) const {
    auto it = map_.lower_bound(k);
    if (it == map_.end()) return false;
    *out = it->first;
    return true;
  }
  bool predecessor(Key k, Key* out) const {
    auto it = map_.upper_bound(k);
    if (it == map_.begin()) return false;
    *out = std::prev(it)->first;
    return true;
  }
  std::pair<u64, u64> range_count_sum(Key lo, Key hi) const {
    u64 count = 0, sum = 0;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi; ++it) {
      ++count;
      sum += it->second;
    }
    return {count, sum};
  }
  u64 size() const { return map_.size(); }
  const std::map<Key, Value>& map() const { return map_; }

 private:
  std::map<Key, Value> map_;
};

/// n distinct sorted keys, uniform over a wide range.
inline std::vector<std::pair<Key, Value>> make_sorted_pairs(u64 n, rnd::Xoshiro256ss& rng,
                                                            Key lo = 0, Key hi = 1'000'000'000) {
  std::map<Key, Value> m;
  while (m.size() < n) m.emplace(rng.range(lo, hi), rng());
  return {m.begin(), m.end()};
}

inline std::vector<Key> random_keys(u64 n, rnd::Xoshiro256ss& rng, Key lo = 0,
                                    Key hi = 1'000'000'000) {
  std::vector<Key> keys(n);
  for (auto& k : keys) k = rng.range(lo, hi);
  return keys;
}

}  // namespace pim::test
