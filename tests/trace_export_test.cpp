// Trace exporter smoke tests: the JSONL export must re-parse against the
// documented schema (one record per line, fixed field order, per-module
// arrays of length P), and the Chrome trace-event export must be a
// structurally sound trace (metadata, phase slices, counter tracks).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pim_skiplist.hpp"
#include "sim/measure.hpp"
#include "sim/trace.hpp"
#include "test_util.hpp"

namespace pim::sim {
namespace {

// Minimal cursor-based parser for the fixed-order JSONL schema; each
// helper consumes one expected token and fails the test on mismatch.
struct Cursor {
  const std::string& s;
  u64 pos = 0;

  bool lit(const char* expect) {
    const u64 n = std::string_view(expect).size();
    if (s.compare(pos, n, expect) != 0) return false;
    pos += n;
    return true;
  }
  u64 number() {
    u64 v = 0;
    EXPECT_TRUE(pos < s.size() && s[pos] >= '0' && s[pos] <= '9') << "expected digit @" << pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      v = v * 10 + static_cast<u64>(s[pos] - '0');
      ++pos;
    }
    return v;
  }
  std::string string_value() {
    EXPECT_TRUE(lit("\"")) << "expected string @" << pos;
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;
      out.push_back(s[pos]);
      ++pos;
    }
    EXPECT_TRUE(lit("\"")) << "unterminated string";
    return out;
  }
  std::vector<u64> array() {
    std::vector<u64> out;
    EXPECT_TRUE(lit("[")) << "expected array @" << pos;
    if (!lit("]")) {
      while (true) {
        out.push_back(number());
        if (lit("]")) break;
        EXPECT_TRUE(lit(",")) << "malformed array @" << pos;
      }
    }
    return out;
  }
};

struct ParsedRecord {
  u64 round = 0;
  u64 h = 0;
  std::string phase;
  std::vector<u64> in, out, work;
};

ParsedRecord parse_line(const std::string& line) {
  ParsedRecord r;
  Cursor c{line};
  EXPECT_TRUE(c.lit("{\"round\":")) << line;
  r.round = c.number();
  EXPECT_TRUE(c.lit(",\"h\":")) << line;
  r.h = c.number();
  EXPECT_TRUE(c.lit(",\"phase\":")) << line;
  r.phase = c.string_value();
  EXPECT_TRUE(c.lit(",\"in\":")) << line;
  r.in = c.array();
  EXPECT_TRUE(c.lit(",\"out\":")) << line;
  r.out = c.array();
  EXPECT_TRUE(c.lit(",\"work\":")) << line;
  r.work = c.array();
  // Optional trailing faults object, then the closing brace.
  if (!c.lit("}")) {
    EXPECT_TRUE(c.lit(",\"faults\":{")) << line;
    EXPECT_NE(line.back(), ',') << line;
    EXPECT_EQ(line.substr(line.size() - 2), "}}") << line;
  }
  return r;
}

struct Traced {
  Machine machine{8};
  Tracer tracer;
  core::PimSkipList list{machine};

  explicit Traced() {
    machine.set_tracer(&tracer);
    rnd::Xoshiro256ss rng(13);
    const auto pairs = test::make_sorted_pairs(600, rng);
    list.build(pairs);
    const auto keys = test::random_keys(200, rng);
    (void)list.batch_successor(keys);
    std::vector<std::pair<Key, Value>> ups;
    for (int i = 0; i < 40; ++i) ups.push_back({rng.below(1u << 30) + 5, rng()});
    list.batch_upsert(ups);
  }
};

TEST(TraceExport, JsonlRoundTripsAgainstSchema) {
  Traced t;
  ASSERT_GT(t.tracer.size(), 0u);
  ASSERT_EQ(t.tracer.dropped(), 0u);

  std::ostringstream os;
  t.tracer.export_jsonl(os);
  std::istringstream is(os.str());

  std::string line;
  u64 n = 0;
  u64 prev_round = 0;
  while (std::getline(is, line)) {
    const ParsedRecord r = parse_line(line);
    const RoundRecord& want = t.tracer.at(n);
    EXPECT_EQ(r.round, want.round);
    EXPECT_EQ(r.h, want.h);
    EXPECT_EQ(r.phase, t.tracer.phase_name(want.phase));
    EXPECT_EQ(r.in, want.in);
    EXPECT_EQ(r.out, want.out);
    EXPECT_EQ(r.work, want.work);
    ASSERT_EQ(r.in.size(), 8u) << "per-module arrays must have P entries";
    ASSERT_EQ(r.out.size(), 8u);
    ASSERT_EQ(r.work.size(), 8u);
    u64 max_load = 0;
    for (u64 m = 0; m < 8; ++m) max_load = std::max(max_load, r.in[m] + r.out[m]);
    EXPECT_EQ(r.h, max_load);
    if (n > 0) {
      EXPECT_GT(r.round, prev_round) << "rounds must be strictly increasing";
    }
    prev_round = r.round;
    ++n;
  }
  EXPECT_EQ(n, t.tracer.size()) << "one JSONL line per retained record";
  // The annotated phases from the ops above must appear in the export.
  EXPECT_NE(os.str().find("\"search:"), std::string::npos);
  EXPECT_NE(os.str().find("\"upsert:"), std::string::npos);
}

TEST(TraceExport, ExportFilePicksFormatBySuffix) {
  Traced t;
  const std::string dir = ::testing::TempDir();
  const std::string jsonl_path = dir + "/pim_trace_test.jsonl";
  const std::string chrome_path = dir + "/pim_trace_test.json";
  ASSERT_TRUE(t.tracer.export_file(jsonl_path));
  ASSERT_TRUE(t.tracer.export_file(chrome_path));

  std::ifstream jf(jsonl_path);
  std::string first_line;
  ASSERT_TRUE(std::getline(jf, first_line));
  (void)parse_line(first_line);  // schema-validates

  std::ifstream cf(chrome_path);
  std::stringstream buf;
  buf << cf.rdbuf();
  const std::string chrome = buf.str();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(chrome.substr(chrome.size() - 3), "]}\n");

  std::remove(jsonl_path.c_str());
  std::remove(chrome_path.c_str());
}

TEST(TraceExport, ChromeTraceHasPhaseAndCounterTracks) {
  Traced t;
  std::ostringstream os;
  t.tracer.export_chrome(os);
  const std::string s = os.str();
  // Metadata names the two processes.
  EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
  // Phase slices on pid 0, h_r counter, per-module counters on pid 1.
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"h_r\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  // Braces balance (cheap structural sanity for the whole document).
  i64 depth = 0;
  bool in_string = false;
  for (u64 i = 0; i < s.size(); ++i) {
    const char ch = s[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExport, RingBufferDropsOldestAndCountsThem) {
  Machine machine(4);
  Tracer tracer(8);  // tiny capacity to force wrap-around
  machine.set_tracer(&tracer);
  core::PimSkipList list(machine);
  rnd::Xoshiro256ss rng(3);
  const auto pairs = test::make_sorted_pairs(200, rng);
  list.build(pairs);
  const auto keys = test::random_keys(100, rng);
  (void)list.batch_successor(keys);

  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_GT(tracer.dropped(), 0u);
  // Retained records are the most recent ones, still strictly ordered.
  for (u64 i = 1; i < tracer.size(); ++i) {
    EXPECT_GT(tracer.at(i).round, tracer.at(i - 1).round);
  }
  EXPECT_EQ(tracer.at(tracer.size() - 1).round + 1, machine.rounds());
}

}  // namespace
}  // namespace pim::sim
