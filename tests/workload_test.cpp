// Tests for the workload generators — the adversary's toolbox.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/generators.hpp"

namespace pim::workload {
namespace {

TEST(Workload, UniformDatasetSortedUniqueInDomain) {
  const auto data = make_uniform_dataset(1000, 1, 100, 200'000);
  EXPECT_EQ(data.pairs.size(), 1000u);
  for (u64 i = 0; i < data.pairs.size(); ++i) {
    EXPECT_GE(data.pairs[i].first, 100);
    EXPECT_LE(data.pairs[i].first, 200'000);
    if (i > 0) {
      EXPECT_LT(data.pairs[i - 1].first, data.pairs[i].first);
    }
  }
}

TEST(Workload, UniformPointBatch) {
  const auto data = make_uniform_dataset(100, 2);
  const auto batch = point_batch(data, Skew::kUniform, 500, 3);
  EXPECT_EQ(batch.size(), 500u);
  for (const Key k : batch) {
    EXPECT_GE(k, data.domain_lo);
    EXPECT_LE(k, data.domain_hi);
  }
}

TEST(Workload, ZipfBatchSkewsTowardFewKeys) {
  const auto data = make_uniform_dataset(1000, 4);
  const auto batch = point_batch(data, Skew::kZipf, 20'000, 5, 0.99);
  std::map<Key, u64> freq;
  for (const Key k : batch) ++freq[k];
  u64 max_freq = 0;
  for (const auto& [k, f] : freq) max_freq = std::max(max_freq, f);
  // The most popular key should account for far more than uniform share.
  EXPECT_GT(max_freq, 20'000u / 1000 * 10);
  // All Zipf keys are stored keys.
  std::set<Key> stored;
  for (const auto& [k, v] : data.pairs) stored.insert(k);
  for (const auto& [k, f] : freq) EXPECT_TRUE(stored.count(k)) << k;
}

TEST(Workload, SameSuccessorBatchSharesOneSuccessor) {
  const auto data = make_uniform_dataset(500, 6);
  const auto batch = point_batch(data, Skew::kSameSuccessor, 300, 7);
  EXPECT_GE(batch.size(), 1u);
  // All keys distinct and inside one gap: the successor of each batch key
  // in the dataset must be identical.
  std::set<Key> distinct(batch.begin(), batch.end());
  EXPECT_EQ(distinct.size(), batch.size());
  auto successor_of = [&](Key k) {
    auto it = std::lower_bound(
        data.pairs.begin(), data.pairs.end(), k,
        [](const std::pair<Key, Value>& p, Key key) { return p.first < key; });
    return it == data.pairs.end() ? kMaxKey : it->first;
  };
  const Key expect = successor_of(batch.front());
  for (const Key k : batch) EXPECT_EQ(successor_of(k), expect);
}

TEST(Workload, SinglePartitionBatchIsNarrow) {
  const auto data = make_uniform_dataset(100, 8, 0, 1'000'000);
  const auto batch = point_batch(data, Skew::kSinglePartition, 400, 9, 0.99, 10);
  const auto [lo, hi] = std::minmax_element(batch.begin(), batch.end());
  EXPECT_LE(*hi - *lo, 100'000);  // within one tenth of the domain
}

TEST(Workload, InsertBatchAvoidsExistingKeys) {
  const auto data = make_uniform_dataset(300, 10, 0, 100'000);
  const auto batch = insert_batch(data, Skew::kUniform, 200, 11);
  EXPECT_EQ(batch.size(), 200u);
  std::set<Key> stored;
  for (const auto& [k, v] : data.pairs) stored.insert(k);
  std::set<Key> fresh;
  for (const auto& [k, v] : batch) {
    EXPECT_FALSE(stored.count(k)) << k;
    EXPECT_TRUE(fresh.insert(k).second) << "duplicate insert key " << k;
  }
}

TEST(Workload, RangeBatchBoundsOrdered) {
  const auto data = make_uniform_dataset(1000, 12);
  const auto batch = range_batch(data, 100, 50, 13);
  EXPECT_EQ(batch.size(), 100u);
  for (const auto& [lo, hi] : batch) {
    EXPECT_LE(lo, hi);
    EXPECT_GE(lo, data.domain_lo);
    EXPECT_LE(hi, data.domain_hi);
  }
}

TEST(Workload, DeterministicPerSeed) {
  const auto data = make_uniform_dataset(100, 14);
  EXPECT_EQ(point_batch(data, Skew::kUniform, 50, 15), point_batch(data, Skew::kUniform, 50, 15));
  EXPECT_NE(point_batch(data, Skew::kUniform, 50, 15), point_batch(data, Skew::kUniform, 50, 16));
}

}  // namespace
}  // namespace pim::workload
